"""Per-server durability journal for crash-recovery episodes.

Each server that runs with durability enabled keeps a :class:`ServerJournal`:
a WAL-protected logical image of its :class:`~repro.storage.graph_store.GraphStore`,
built on :class:`~repro.storage.durable.DurableRecordStore` with an injected
dict-backed store and a JSON codec.  The journal observes every *logical*
mutation of the graph store (node/relationship content — never the derived
chain pointers) and writes it as one auto-committed, flushed transaction, so
the durable image always equals the logical store state at step boundaries.

A crash episode then is:

1. ``crash()`` — lose the page cache and the unflushed WAL tail, replay the
   durable log (redo + undo-losers via :func:`repro.storage.wal.recover`);
2. ``rebuild(server_id)`` — grow a fresh :class:`GraphStore` from the
   recovered image: nodes first (weight, availability, properties), then
   relationships in id order, which re-derives the adjacency chains from
   node locality exactly as the original ingest did.

Record key scheme inside the journal's record store::

    node  n  ->  key  2*n
    rel   r  ->  key  2*r + 1
    meta     ->  key  -2        (allocator counters + stripe count)
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exceptions import RecordNotFoundError
from repro.storage.durable import DurableRecordStore
from repro.storage.graph_store import GraphStore
from repro.storage.records import RecordCodec
from repro.storage.wal import RecoveryReport

#: journal key of the allocator-state record
META_RECORD = -2


class _ImageCodec(RecordCodec):
    """JSON logical images — variable length, canonical key order."""

    FORMAT = ""  # never placed in fixed page slots

    def pack(self, record: Any) -> bytes:
        return json.dumps(record, sort_keys=True).encode("utf-8")

    def unpack(self, payload: bytes) -> Any:
        return json.loads(payload.decode("utf-8"))

    def header(self, payload: bytes) -> Tuple[bool, int]:
        return True, -1  # only consulted by page-slot scans; never here


class _DictStore:
    """Dict-backed record store with the FixedRecordStore surface the
    durable layer uses (write/read/delete/contains/len/ids)."""

    def __init__(self, codec: Optional[RecordCodec] = None):
        self.codec = codec
        self._records: Dict[int, Any] = {}

    def write(self, record_id: int, record: Any) -> None:
        self._records[record_id] = record

    def read(self, record_id: int) -> Any:
        try:
            return self._records[record_id]
        except KeyError:
            raise RecordNotFoundError(f"record {record_id} not found")

    def delete(self, record_id: int) -> None:
        if record_id not in self._records:
            raise RecordNotFoundError(f"record {record_id} not found")
        del self._records[record_id]

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def ids(self) -> Iterator[int]:
        return iter(sorted(self._records))


def logical_store_snapshot(store: GraphStore) -> Dict[str, Dict[int, Any]]:
    """Pointer-free logical content of a live graph store.

    The canonical shape compared by the recovery-fidelity invariant:
    chain order and property record ids are physical artifacts and are
    deliberately absent.
    """
    nodes = {
        node_id: store.node_image(node_id) for node_id in sorted(store.node_ids())
    }
    rels = {}
    for record in store.relationships.records():
        rels[record.rel_id] = store.relationship_image(record.rel_id)
    return {"nodes": nodes, "rels": dict(sorted(rels.items()))}


class ServerJournal:
    """WAL-backed logical journal of one server's graph store."""

    def __init__(self) -> None:
        self.durable = DurableRecordStore(_ImageCodec(), store=_DictStore())
        self.graph: Optional[GraphStore] = None

    # ------------------------------------------------------------------
    # Attachment / baseline
    # ------------------------------------------------------------------
    def attach(self, graph: GraphStore) -> None:
        """Start observing ``graph``; journal its current state as the
        baseline and checkpoint so an immediate crash recovers it."""
        self.graph = graph
        graph.observer = self
        with self.durable.begin() as txn:
            for node_id in sorted(graph.node_ids()):
                txn.write(2 * node_id, graph.node_image(node_id))
            for record in graph.relationships.records():
                txn.write(
                    2 * record.rel_id + 1, graph.relationship_image(record.rel_id)
                )
            txn.write(META_RECORD, graph.allocator_state())
        self.durable.checkpoint()

    def detach(self) -> None:
        if self.graph is not None and self.graph.observer is self:
            self.graph.observer = None
        self.graph = None

    # ------------------------------------------------------------------
    # GraphStore observer protocol — one flushed txn per logical mutation
    # ------------------------------------------------------------------
    def _txn_put(self, key: int, image: Any) -> None:
        with self.durable.begin() as txn:
            txn.write(key, image)
            txn.write(META_RECORD, self.graph.allocator_state())

    def _txn_delete(self, key: int) -> None:
        with self.durable.begin() as txn:
            if key in self.durable:
                txn.delete(key)
            txn.write(META_RECORD, self.graph.allocator_state())

    def node_changed(self, node_id: int) -> None:
        self._txn_put(2 * node_id, self.graph.node_image(node_id))

    def node_removed(self, node_id: int) -> None:
        self._txn_delete(2 * node_id)

    def rel_changed(self, rel_id: int) -> None:
        self._txn_put(2 * rel_id + 1, self.graph.relationship_image(rel_id))

    def rel_removed(self, rel_id: int) -> None:
        self._txn_delete(2 * rel_id + 1)

    def note_meta(self) -> None:
        """Persist allocator state alone (after an id-generation rebase)."""
        with self.durable.begin() as txn:
            txn.write(META_RECORD, self.graph.allocator_state())

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self, keep_unflushed_bytes: int = 0) -> RecoveryReport:
        """Simulate a crash + restart recovery of the journal itself.

        Afterwards the journal's record store holds exactly the durable
        pre-crash image (every journal txn commits at a step boundary, so
        with ``keep_unflushed_bytes=0`` nothing is lost)."""
        return self.durable.simulate_crash_and_recover(keep_unflushed_bytes)

    def snapshot(self) -> Dict[str, Dict[int, Any]]:
        """Logical image currently held by the (recovered) journal."""
        nodes: Dict[int, Any] = {}
        rels: Dict[int, Any] = {}
        for key in self.durable.ids():
            if key == META_RECORD:
                continue
            image = self.durable.read(key)
            if key % 2 == 0:
                nodes[key // 2] = image
            else:
                rels[(key - 1) // 2] = image
        return {"nodes": dict(sorted(nodes.items())), "rels": dict(sorted(rels.items()))}

    def meta(self) -> Dict[str, int]:
        if META_RECORD in self.durable:
            return dict(self.durable.read(META_RECORD))
        return {"num_stripes": 1, "rel_counter": 0, "prop_counter": 0}

    def rebuild(self, server_id: int) -> GraphStore:
        """Grow a fresh GraphStore from the recovered journal image."""
        meta = self.meta()
        image = self.snapshot()
        store = GraphStore(server_id=server_id, num_servers=meta["num_stripes"])
        unavailable = []
        for node_id, node in image["nodes"].items():
            store.create_node(node_id, weight=node["weight"], properties=node["properties"])
            if not node["available"]:
                unavailable.append(node_id)
        for rel_id, rel in image["rels"].items():
            store.create_relationship(
                rel_id,
                rel["src"],
                rel["dst"],
                ghost=rel["ghost"],
                properties=rel["properties"] or None,
            )
        for node_id in unavailable:
            store.set_available(node_id, False)
        # Exact allocator positions: the journaled counters, or higher if
        # the rebuild's own property allocations already moved past them.
        current = store.allocator_state()
        store.set_allocator_state(
            meta["num_stripes"],
            max(meta["rel_counter"], current["rel_counter"]),
            max(meta["prop_counter"], current["prop_counter"]),
        )
        return store

"""One Hermes server: a GraphStore plus transactions and request handling.

Servers expose the record-level operations the workloads exercise —
single-record reads, property writes, vertex/edge inserts — and the
chain-walking expansion step used by the distributed traversal engine.
Every mutation runs inside a transaction with record locks, mirroring the
engine described in Section 4.

Per-server load counters (vertices visited, record reads, transactional
writes, simulated busy seconds) live in the telemetry registry, labelled
by server, so they show up in every export alongside the network and
migration metrics.  The historical ``server.visits``-style attribute API
is preserved as thin properties over those instruments; the instrument
objects themselves (``visits_counter`` …) are public so hot paths pay a
single bound-method call.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cluster.faults import FaultInjector
from repro.exceptions import ClusterError
from repro.storage.graph_store import GraphStore, NeighborEntry
from repro.telemetry import Telemetry
from repro.txn.locks import LockMode
from repro.txn.manager import TransactionManager


#: membership state machine (DESIGN.md §14):
#: JOINING -> ACTIVE -> DRAINING -> DETACHED, ACTIVE -> CRASHED ->
#: RECOVERING -> ACTIVE.  Servers are never deleted from the cluster's
#: server list — ids stay dense and valid — but only ACTIVE servers are
#: schedulable placement targets.
JOINING = "joining"
ACTIVE = "active"
DRAINING = "draining"
DETACHED = "detached"
CRASHED = "crashed"
RECOVERING = "recovering"


class HermesServer:
    """A single database server hosting one partition."""

    def __init__(
        self,
        server_id: int,
        num_servers: int,
        clock=None,
        lock_timeout: float = 1.0,
        telemetry: Optional[Telemetry] = None,
        labels: Optional[Dict[str, object]] = None,
    ):
        self.server_id = server_id
        self.store = GraphStore(server_id=server_id, num_servers=num_servers)
        self.txns = TransactionManager(clock=clock, lock_timeout=lock_timeout)
        self.faults: Optional[FaultInjector] = None
        #: membership state (module-level constants above)
        self.state = ACTIVE
        #: relative serving capacity (1.0 = one standard server)
        self.capacity = 1.0
        # The legacy attribute API reads through these instruments, so the
        # registry must be real even without an attached sink: a bare
        # Telemetry() is exactly that (in-memory numbers, no recording).
        if telemetry is None or telemetry.null:
            telemetry = Telemetry(clock=clock)
        self.telemetry = telemetry
        label = dict(labels or {})
        label["server"] = server_id
        #: instrumentation: how many vertices this server processed
        self.visits_counter = telemetry.counter(
            "server_visits_total", "vertices processed by this server", **label
        )
        self.reads_counter = telemetry.counter(
            "server_reads_total", "single-record read requests", **label
        )
        self.writes_counter = telemetry.counter(
            "server_writes_total", "transactional write requests", **label
        )
        #: simulated CPU-seconds this server has spent serving requests
        self.busy_counter = telemetry.counter(
            "server_busy_seconds_total", "simulated busy seconds", **label
        )

    # ------------------------------------------------------------------
    # Legacy counter attribute API (now thin property views)
    # ------------------------------------------------------------------
    @property
    def visits(self) -> int:
        return int(self.visits_counter.value)

    @visits.setter
    def visits(self, value: int) -> None:
        self.visits_counter.set(value)

    @property
    def reads(self) -> int:
        return int(self.reads_counter.value)

    @reads.setter
    def reads(self, value: int) -> None:
        self.reads_counter.set(value)

    @property
    def writes(self) -> int:
        return int(self.writes_counter.value)

    @writes.setter
    def writes(self, value: int) -> None:
        self.writes_counter.set(value)

    @property
    def busy_seconds(self) -> float:
        return self.busy_counter.value

    @busy_seconds.setter
    def busy_seconds(self, value: float) -> None:
        self.busy_counter.set(value)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def attach_faults(self, injector: Optional[FaultInjector]) -> None:
        """Install (or with None, remove) the fault-injection oracle.

        While the injector places this server inside a crash window,
        request dispatch raises :class:`~repro.exceptions.ServerDownError`
        — the store itself survives the outage untouched, matching the
        paper's assumption that a restarted server recovers its data.
        """
        self.faults = injector

    def _check_up(self) -> None:
        if self.faults is not None:
            self.faults.check_server(self.server_id)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read_vertex(self, node_id: int) -> Dict[str, Any]:
        """Single-record query: the node's properties (bumps popularity)."""
        self._check_up()
        if not self.store.is_available(node_id):
            raise ClusterError(f"vertex {node_id} is not served by server {self.server_id}")
        self.reads_counter.inc()
        self.visits_counter.inc()
        self.store.add_node_weight(node_id, 1.0)
        return self.store.node_properties(node_id)

    def expand(self, node_id: int) -> List[NeighborEntry]:
        """One traversal step: the node's full (local) adjacency list.

        Visit accounting is done by the traversal engine (it counts every
        *processed* vertex, including final-hop vertices that are never
        expanded), so this method does not touch ``visits``.
        """
        self._check_up()
        if not self.store.is_available(node_id):
            raise ClusterError(f"vertex {node_id} is not served by server {self.server_id}")
        return list(self.store.neighbor_entries(node_id))

    # ------------------------------------------------------------------
    # Write path (transactional)
    # ------------------------------------------------------------------
    def create_vertex(
        self, node_id: int, weight: float = 1.0, properties: Optional[Dict] = None
    ) -> None:
        self.writes_counter.inc()
        with self.txns.begin() as txn:
            txn.lock(("node", node_id), LockMode.EXCLUSIVE)
            self.store.create_node(node_id, weight=weight, properties=properties)
            txn.record_undo(lambda: self.store.delete_node(node_id))

    def create_local_edge(
        self, rel_id: int, src: int, dst: int, properties: Optional[Dict] = None
    ) -> None:
        """Insert an edge record; both/either endpoint may be local."""
        self.writes_counter.inc()
        with self.txns.begin() as txn:
            txn.lock(("node", src), LockMode.EXCLUSIVE)
            txn.lock(("node", dst), LockMode.EXCLUSIVE)
            self.store.create_relationship(rel_id, src, dst, properties=properties)
            txn.record_undo(lambda: self.store.delete_relationship(rel_id))

    def create_ghost_edge(self, rel_id: int, src: int, dst: int) -> None:
        """Insert the ghost counterpart of a cross-partition edge."""
        self.writes_counter.inc()
        with self.txns.begin() as txn:
            txn.lock(("rel", rel_id), LockMode.EXCLUSIVE)
            self.store.create_relationship(rel_id, src, dst, ghost=True)
            txn.record_undo(lambda: self.store.delete_relationship(rel_id))

    def set_property(self, node_id: int, key: str, value: Any) -> None:
        self.writes_counter.inc()
        with self.txns.begin() as txn:
            txn.lock(("node", node_id), LockMode.EXCLUSIVE)
            previous = self.store.get_node_property(node_id, key)
            had_key = key in self.store.node_properties(node_id)
            self.store.set_node_property(node_id, key, value)

            def undo() -> None:
                if had_key:
                    self.store.set_node_property(node_id, key, previous)
                else:
                    self.store.remove_node_property(node_id, key)

            txn.record_undo(undo)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.store.num_nodes

    def __repr__(self) -> str:
        return (
            f"HermesServer(id={self.server_id}, vertices={self.store.num_nodes}, "
            f"relationships={len(self.store.relationships)})"
        )

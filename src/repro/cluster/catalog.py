"""Vertex -> server catalog (the cluster's placement directory).

"To submit a query the client would first lookup the vertex for the
starting point of the query, then send the traversal query to the server
hosting the initial vertex" (Section 4).  The catalog is that lookup
service; migration updates it between the copy and remove steps so that
queries route to the new replica before the original disappears.

:class:`LocationCache` layers per-server cached views over the catalog
for the traversal hot path.  A migration commit updates the entries of
the *participating* servers (they learn the new home as part of the
copy/remove protocol); every other server keeps whatever it last saw.  A
stale entry is harmless — the old host forwards the request to the new
one for one extra hop, the forwarding result is cached, and the next
lookup from that server is fresh.  This is the classic
directory-hint design: commits stay cheap (no cluster-wide invalidation
broadcast) and the forwarding charge is paid only by servers that
actually touch a moved vertex.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import CatalogError
from repro.partitioning.base import Partitioning
from repro.telemetry import NULL_TELEMETRY, Telemetry


class Catalog:
    """Thin ownership wrapper around a :class:`Partitioning`."""

    def __init__(self, num_servers: int):
        self._placement = Partitioning(num_servers)

    @classmethod
    def from_partitioning(cls, partitioning: Partitioning) -> "Catalog":
        catalog = cls(partitioning.num_partitions)
        catalog._placement = partitioning.copy()
        return catalog

    @property
    def num_servers(self) -> int:
        return self._placement.num_partitions

    def lookup(self, vertex: int) -> int:
        """Which server hosts this vertex?"""
        server = self._placement.get(vertex)
        if server is None:
            raise CatalogError(f"vertex {vertex} is not in the catalog")
        return server

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._placement

    def register(self, vertex: int, server: int) -> None:
        self._placement.assign(vertex, server)

    def move(self, vertex: int, server: int) -> int:
        """Re-home a vertex; returns its previous server."""
        return self._placement.move(vertex, server)

    def unregister(self, vertex: int) -> int:
        return self._placement.remove(vertex)

    def vertices_on(self, server: int) -> Set[int]:
        return self._placement.vertices_in(server)

    def vertices(self) -> Iterator[int]:
        return iter(self._placement.as_mapping())

    def sizes(self) -> list:
        return self._placement.sizes()

    def add_server(self) -> int:
        """Grow the directory by one (empty) server; returns its id."""
        return self._placement.add_partition()

    def snapshot(self) -> Partitioning:
        """An independent copy of the current placement."""
        return self._placement.copy()

    def as_mapping(self) -> Dict[int, int]:
        return self._placement.as_mapping()


class LocationCache:
    """Per-server cached vertex locations layered over a :class:`Catalog`.

    Each server keeps a plain ``{vertex: host}`` dict — the hot-path
    lookup during frontier expansion is one dict probe instead of a
    catalog round trip.  Entries are learned on miss (from the
    authoritative catalog), corrected on a stale hit (after the traversal
    engine pays the forwarding hop), and updated eagerly only on the
    servers that participate in a migration commit.
    """

    def __init__(
        self,
        catalog: Catalog,
        num_servers: int,
        telemetry: Optional[Telemetry] = None,
    ):
        self.catalog = catalog
        self.num_servers = num_servers
        self._entries: List[Dict[int, int]] = [{} for _ in range(num_servers)]
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._hits = telemetry.counter(
            "location_cache_hits_total", "vertex locations served from cache"
        )
        self._misses = telemetry.counter(
            "location_cache_misses_total", "vertex locations fetched from the catalog"
        )
        self._stale = telemetry.counter(
            "location_cache_stale_hits_total",
            "cached locations that pointed at a pre-migration host",
        )
        self._invalidations = telemetry.counter(
            "location_cache_invalidations_total",
            "cache entries refreshed by migration commits",
        )

    def lookup_from(self, server: int, vertex: int) -> int:
        """Where does ``server`` believe ``vertex`` lives?

        A hit returns the cached (possibly stale) host; a miss consults
        the authoritative catalog and caches the answer.
        """
        entries = self._entries[server]
        cached = entries.get(vertex)
        if cached is not None:
            self._hits.inc()
            return cached
        self._misses.inc()
        host = self.catalog.lookup(vertex)
        entries[vertex] = host
        return host

    def learn(self, server: int, vertex: int, host: int) -> None:
        """Record the location ``server`` just resolved via forwarding."""
        self._stale.inc()
        self._entries[server][vertex] = host

    def on_moved(self, vertex: int, source: int, target: int) -> None:
        """A migration commit re-homed ``vertex``: the participating
        servers learn the new location synchronously; everyone else keeps
        a stale entry that resolves via forwarding on next use."""
        self._entries[source][vertex] = target
        self._entries[target][vertex] = target
        self._invalidations.inc()

    def on_removed(self, vertex: int) -> None:
        """Drop ``vertex`` from every per-server view (vertex deleted)."""
        for entries in self._entries:
            entries.pop(vertex, None)

    def add_server(self) -> None:
        """Grow the cache with an (empty) view for a joining server."""
        self._entries.append({})
        self.num_servers += 1

    def purge_host(self, host: int) -> None:
        """Drop every entry pointing at ``host`` plus that server's own
        view — a detached server must appear in no location cache, and a
        hint aimed at it could never be resolved by forwarding."""
        for entries in self._entries:
            stale = [vertex for vertex, cached in entries.items() if cached == host]
            for vertex in stale:
                del entries[vertex]
        self._entries[host].clear()

    def clear(self) -> None:
        for entries in self._entries:
            entries.clear()

    def entries_on(self, server: int) -> Dict[int, int]:
        """Snapshot of one server's cached view (tests/introspection)."""
        return dict(self._entries[server])

    def all_entries(self) -> Iterator[Tuple[int, int, int]]:
        """Every cached ``(server, vertex, believed_host)`` triple.

        Introspection hook for the simtest auditor: each entry must be
        either correct or resolvable via one forwarding hop.
        """
        for server, entries in enumerate(self._entries):
            for vertex, host in entries.items():
                yield server, vertex, host

"""Vertex -> server catalog (the cluster's placement directory).

"To submit a query the client would first lookup the vertex for the
starting point of the query, then send the traversal query to the server
hosting the initial vertex" (Section 4).  The catalog is that lookup
service; migration updates it between the copy and remove steps so that
queries route to the new replica before the original disappears.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set

from repro.exceptions import CatalogError
from repro.partitioning.base import Partitioning


class Catalog:
    """Thin ownership wrapper around a :class:`Partitioning`."""

    def __init__(self, num_servers: int):
        self._placement = Partitioning(num_servers)

    @classmethod
    def from_partitioning(cls, partitioning: Partitioning) -> "Catalog":
        catalog = cls(partitioning.num_partitions)
        catalog._placement = partitioning.copy()
        return catalog

    @property
    def num_servers(self) -> int:
        return self._placement.num_partitions

    def lookup(self, vertex: int) -> int:
        """Which server hosts this vertex?"""
        server = self._placement.get(vertex)
        if server is None:
            raise CatalogError(f"vertex {vertex} is not in the catalog")
        return server

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._placement

    def register(self, vertex: int, server: int) -> None:
        self._placement.assign(vertex, server)

    def move(self, vertex: int, server: int) -> int:
        """Re-home a vertex; returns its previous server."""
        return self._placement.move(vertex, server)

    def unregister(self, vertex: int) -> int:
        return self._placement.remove(vertex)

    def vertices_on(self, server: int) -> Set[int]:
        return self._placement.vertices_in(server)

    def vertices(self) -> Iterator[int]:
        return iter(self._placement.as_mapping())

    def sizes(self) -> list:
        return self._placement.sizes()

    def snapshot(self) -> Partitioning:
        """An independent copy of the current placement."""
        return self._placement.copy()

    def as_mapping(self) -> Dict[int, int]:
        return self._placement.as_mapping()

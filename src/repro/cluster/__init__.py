"""Distributed cluster simulator (paper Sections 4-5).

The paper evaluates Hermes on 16 servers connected by 1Gb Ethernet with
32 concurrent clients.  This package reproduces that system as a
discrete-event simulation: each :class:`HermesServer` owns a real
:class:`~repro.storage.GraphStore`; a :class:`SimulatedNetwork` charges
latency for every remote hop and counts messages; traversals execute
exactly like the paper describes (the query is forwarded to the server
hosting the start vertex, remote traversals follow inter-server links);
and the :class:`MigrationExecutor` runs the two-step copy/remove physical
migration protocol with ghost-relationship bookkeeping.
"""

from repro.cluster.catalog import Catalog, LocationCache
from repro.cluster.clients import ClientPool, WorkloadReport
from repro.cluster.faults import CrashWindow, FaultInjector, FaultPlan, RetryPolicy
from repro.cluster.hermes import HermesCluster
from repro.cluster.migration_executor import MigrationExecutor, MigrationReport
from repro.cluster.network import NetworkConfig, SimulatedNetwork
from repro.cluster.server import HermesServer
from repro.cluster.traversal import TraversalEngine, TraversalResult

__all__ = [
    "Catalog",
    "LocationCache",
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "NetworkConfig",
    "SimulatedNetwork",
    "HermesServer",
    "TraversalEngine",
    "TraversalResult",
    "MigrationExecutor",
    "MigrationReport",
    "ClientPool",
    "WorkloadReport",
    "HermesCluster",
]

"""Simulated peer-to-peer network with a latency cost model.

Hermes servers are "connected in a peer-to-peer fashion" (Figure 6); an
edge-cut shifts a local traversal step into a remote traversal, "thereby
incurring significant network latency" (Section 1).  The simulation
charges every operation a cost in simulated seconds:

* a local vertex visit costs ``local_visit_cost`` (an in-memory/page-cache
  record read plus processing);
* following an edge whose endpoint lives on another server costs an extra
  ``remote_hop_cost`` (a request/response round on the LAN);
* bulk record transfers during migration cost
  ``transfer_base_cost + bytes * transfer_byte_cost``.

Defaults approximate the paper's testbed (1Gb Ethernet: ~0.5 ms per
round-trip including serialization; tens of microseconds per local record
visit).  The *absolute* throughput numbers are not meaningful — the
relative performance of partitioners, which is driven by the
local/remote mix, is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.exceptions import ClusterError


@dataclass(frozen=True)
class NetworkConfig:
    """Latency model in simulated seconds."""

    local_visit_cost: float = 20e-6
    remote_hop_cost: float = 500e-6
    #: CPU consumed on EACH endpoint server to service one remote hop
    #: (serialization, syscalls, RPC dispatch) — this is the "network IO"
    #: load that edge-cuts impose on servers, distinct from wire latency.
    remote_service_cost: float = 50e-6
    transfer_base_cost: float = 500e-6
    transfer_byte_cost: float = 8e-9  # ~1 Gb/s payload bandwidth
    client_dispatch_cost: float = 100e-6  # client -> cluster round trip


@dataclass
class NetworkStats:
    """Message/byte counters kept per server pair."""

    messages: int = 0
    bytes_sent: int = 0
    per_link: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, size: int) -> None:
        self.messages += 1
        self.bytes_sent += size
        key = (src, dst)
        self.per_link[key] = self.per_link.get(key, 0) + 1


class SimulatedNetwork:
    """Cost accounting for inter-server communication."""

    def __init__(self, num_servers: int, config: NetworkConfig = NetworkConfig()):
        if num_servers < 1:
            raise ClusterError("need at least one server")
        self.num_servers = num_servers
        self.config = config
        self.stats = NetworkStats()

    def _check(self, server: int) -> None:
        if not 0 <= server < self.num_servers:
            raise ClusterError(
                f"server {server} out of range [0, {self.num_servers})"
            )

    def local_visit(self) -> float:
        """Cost of processing one vertex on its own server."""
        return self.config.local_visit_cost

    def remote_hop(self, src: int, dst: int, size: int = 256) -> float:
        """Cost of one remote traversal step ``src -> dst``."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        self.stats.record(src, dst, size)
        return self.config.remote_hop_cost

    def transfer(self, src: int, dst: int, size: int) -> float:
        """Cost of a bulk record transfer (migration copy step)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        self.stats.record(src, dst, size)
        return self.config.transfer_base_cost + size * self.config.transfer_byte_cost

    def broadcast(self, src: int, size: int = 64) -> float:
        """Cost of a synchronization message to every other server."""
        self._check(src)
        cost = 0.0
        for dst in range(self.num_servers):
            if dst != src:
                cost += self.remote_hop(src, dst, size)
        return cost

"""Simulated peer-to-peer network with a latency cost model.

Hermes servers are "connected in a peer-to-peer fashion" (Figure 6); an
edge-cut shifts a local traversal step into a remote traversal, "thereby
incurring significant network latency" (Section 1).  The simulation
charges every operation a cost in simulated seconds:

* a local vertex visit costs ``local_visit_cost`` (an in-memory/page-cache
  record read plus processing);
* following an edge whose endpoint lives on another server costs an extra
  ``remote_hop_cost`` (a request/response round on the LAN);
* bulk record transfers during migration cost
  ``transfer_base_cost + bytes * transfer_byte_cost``.

Defaults approximate the paper's testbed (1Gb Ethernet: ~0.5 ms per
round-trip including serialization; tens of microseconds per local record
visit).  The *absolute* throughput numbers are not meaningful — the
relative performance of partitioners, which is driven by the
local/remote mix, is.

Besides the legacy :class:`NetworkStats` counters (kept as the source of
truth for aggregate messages/bytes and per-link totals), the network
mirrors everything into an attached :class:`~repro.telemetry.Telemetry`
hub: ``network_messages_total``/``network_bytes_total`` counters labelled
per kind (hop/transfer) and hop/transfer latency histograms.  With the
default null hub all of that is a handful of no-op calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.faults import FaultInjector
from repro.exceptions import ClusterError, FaultInjectedError
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import DEFAULT_SIZE_BUCKETS

#: histogram buckets for frontier entries per batched hop message
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class NetworkConfig:
    """Latency model in simulated seconds."""

    local_visit_cost: float = 20e-6
    remote_hop_cost: float = 500e-6
    #: CPU consumed on EACH endpoint server to service one remote hop
    #: (serialization, syscalls, RPC dispatch) — this is the "network IO"
    #: load that edge-cuts impose on servers, distinct from wire latency.
    remote_service_cost: float = 50e-6
    transfer_base_cost: float = 500e-6
    transfer_byte_cost: float = 8e-9  # ~1 Gb/s payload bandwidth
    client_dispatch_cost: float = 100e-6  # client -> cluster round trip
    #: sender-side wait before a lost/unanswered message is declared dead
    #: (a few RTTs, as a TCP-ish retransmission timeout would be)
    fault_timeout_cost: float = 2e-3
    #: Aggregate all traversal frontier work bound for one server into a
    #: single request per hop (one round trip per (src, dst) link per
    #: depth) instead of one message per frontier entry.  Disable for the
    #: pre-batching legacy cost model, which the reference fixtures pin
    #: byte for byte.
    batch_remote_hops: bool = True
    #: marginal cost of one extra frontier entry riding an already-paid
    #: round trip (serialization of one vertex id + one response row)
    batch_entry_cost: float = 25e-6
    #: wire framing of one batched request (header, routing, checksums)
    batch_base_bytes: int = 128
    #: payload bytes per frontier entry in a batched request/response
    batch_entry_bytes: int = 64


@dataclass
class LinkStats:
    """Traffic on one directed server pair."""

    messages: int = 0
    bytes: int = 0


@dataclass
class NetworkStats:
    """Message/byte counters kept per server pair.

    Send-side (``record``) and receive-side (``deliver``) accounting are
    deliberately separate code paths: the network charges the sender when
    it puts a message on the wire and the receiver when the message
    arrives.  In a correct simulation every delivered message is counted
    exactly once on each side — the conservation invariant
    (bytes-sent == bytes-received per link) that the simtest auditor
    checks between schedule steps.  A message dropped by fault injection
    is counted on neither side.
    """

    messages: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    per_link: Dict[Tuple[int, int], LinkStats] = field(default_factory=dict)
    received_per_link: Dict[Tuple[int, int], LinkStats] = field(default_factory=dict)

    def record(self, src: int, dst: int, size: int) -> None:
        self.messages += 1
        self.bytes_sent += size
        link = self.per_link.get((src, dst))
        if link is None:
            link = self.per_link[(src, dst)] = LinkStats()
        link.messages += 1
        link.bytes += size

    def deliver(self, src: int, dst: int, size: int) -> None:
        """Receive-side counterpart of :meth:`record`."""
        self.messages_received += 1
        self.bytes_received += size
        link = self.received_per_link.get((src, dst))
        if link is None:
            link = self.received_per_link[(src, dst)] = LinkStats()
        link.messages += 1
        link.bytes += size

    def top_links(
        self, n: int, by: str = "bytes"
    ) -> List[Tuple[Tuple[int, int], LinkStats]]:
        """The ``n`` busiest links, by ``bytes`` (default) or ``messages``."""
        if by not in ("bytes", "messages"):
            raise ValueError(f"by must be 'bytes' or 'messages', got {by!r}")
        # Descending by traffic, ties in ascending link order (reverse=True
        # on the whole tuple would flip the tie order too).
        ranked = sorted(
            self.per_link.items(),
            key=lambda item: (-getattr(item[1], by), item[0]),
        )
        return ranked[:n]


class SimulatedNetwork:
    """Cost accounting for inter-server communication."""

    def __init__(
        self,
        num_servers: int,
        config: Optional[NetworkConfig] = None,
        telemetry: Optional[Telemetry] = None,
        labels: Optional[Dict[str, object]] = None,
    ):
        if num_servers < 1:
            raise ClusterError("need at least one server")
        self.num_servers = num_servers
        self.config = config if config is not None else NetworkConfig()
        self.stats = NetworkStats()
        self.fault_injector: Optional[FaultInjector] = None
        self._labels = dict(labels or {})
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    def attach_faults(self, injector: Optional[FaultInjector]) -> None:
        """Install (or with None, remove) the fault-injection oracle."""
        self.fault_injector = injector

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """(Re)bind the metric instruments against ``telemetry``."""
        self.telemetry = telemetry
        extra = self._labels
        # Per-link gauges are quadratic in servers, so they are only
        # materialized at export time via the hub's flush hooks.
        telemetry.on_flush(self.export_link_metrics)
        self._hop_messages = telemetry.counter(
            "network_messages_total", "messages sent between servers",
            kind="hop", **extra,
        )
        self._transfer_messages = telemetry.counter(
            "network_messages_total", kind="transfer", **extra
        )
        self._hop_bytes = telemetry.counter(
            "network_bytes_total", "payload bytes sent between servers",
            kind="hop", **extra,
        )
        self._transfer_bytes = telemetry.counter(
            "network_bytes_total", kind="transfer", **extra
        )
        self._hop_latency = telemetry.histogram(
            "network_hop_seconds", "simulated latency of one remote hop", **extra
        )
        self._transfer_latency = telemetry.histogram(
            "network_transfer_seconds",
            "simulated latency of one bulk transfer",
            **extra,
        )
        self._transfer_sizes = telemetry.histogram(
            "network_transfer_bytes",
            "payload size of one bulk transfer",
            buckets=DEFAULT_SIZE_BUCKETS,
            **extra,
        )
        self._batch_sizes = telemetry.histogram(
            "network_batch_entries",
            "frontier entries aggregated into one batched hop",
            buckets=BATCH_SIZE_BUCKETS,
            **extra,
        )

    def add_server(self) -> int:
        """Admit one more endpoint; returns its id.  Stats dicts grow
        lazily, so widening the id range is all a join needs."""
        server = self.num_servers
        self.num_servers += 1
        return server

    def _check(self, server: int) -> None:
        if not 0 <= server < self.num_servers:
            raise ClusterError(
                f"server {server} out of range [0, {self.num_servers})"
            )

    def local_visit(self) -> float:
        """Cost of processing one vertex on its own server."""
        return self.config.local_visit_cost

    def remote_hop(self, src: int, dst: int, size: int = 256) -> float:
        """Cost of one remote traversal step ``src -> dst``.

        With a fault injector attached this may raise a
        :class:`~repro.exceptions.FaultInjectedError` instead — the
        message never arrived and only the sender's timeout was spent.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        if self.fault_injector is not None:
            self.fault_injector.check_message(
                src, dst, cost=self.config.fault_timeout_cost
            )
        self.stats.record(src, dst, size)
        cost = self.config.remote_hop_cost
        self._hop_messages.inc()
        self._hop_bytes.inc(size)
        self._hop_latency.observe(cost)
        self.stats.deliver(src, dst, size)
        if self.fault_injector is not None:
            self.fault_injector.advance(cost)
        return cost

    def batched_hop(self, src: int, dst: int, count: int) -> float:
        """Cost of one aggregated traversal message carrying ``count``
        frontier entries ``src -> dst``.

        The round trip is paid once per message — ``remote_hop_cost``
        plus a per-entry marginal cost — and the payload grows with the
        batch size.  Fault injection applies once per message, not once
        per entry: a lost batch times out exactly like a lost single hop
        and the whole batch is retried together.
        """
        self._check(src)
        self._check(dst)
        if src == dst or count <= 0:
            return 0.0
        if self.fault_injector is not None:
            self.fault_injector.check_message(
                src, dst, cost=self.config.fault_timeout_cost
            )
        size = self.config.batch_base_bytes + count * self.config.batch_entry_bytes
        self.stats.record(src, dst, size)
        cost = self.config.remote_hop_cost + count * self.config.batch_entry_cost
        self._hop_messages.inc()
        self._hop_bytes.inc(size)
        self._hop_latency.observe(cost)
        self._batch_sizes.observe(count)
        self.stats.deliver(src, dst, size)
        if self.fault_injector is not None:
            self.fault_injector.advance(cost)
        return cost

    def transfer(self, src: int, dst: int, size: int) -> float:
        """Cost of a bulk record transfer (migration copy step).

        Subject to the same fault injection as :meth:`remote_hop`.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        if self.fault_injector is not None:
            self.fault_injector.check_message(
                src, dst, cost=self.config.fault_timeout_cost
            )
        self.stats.record(src, dst, size)
        cost = self.config.transfer_base_cost + size * self.config.transfer_byte_cost
        self._transfer_messages.inc()
        self._transfer_bytes.inc(size)
        self._transfer_latency.observe(cost)
        self._transfer_sizes.observe(size)
        self.stats.deliver(src, dst, size)
        if self.fault_injector is not None:
            self.fault_injector.advance(cost)
        return cost

    def export_link_metrics(self) -> None:
        """Snapshot per-link traffic into the registry as labelled gauges.

        Links are a quadratic label space, so they are materialized once
        at export time rather than on every message.
        """
        for (src, dst), link in self.stats.per_link.items():
            self.telemetry.gauge(
                "network_link_messages", "messages on one directed link",
                src=src, dst=dst, **self._labels,
            ).set(link.messages)
            self.telemetry.gauge(
                "network_link_bytes", "payload bytes on one directed link",
                src=src, dst=dst, **self._labels,
            ).set(link.bytes)

    def broadcast(self, src: int, size: int = 64) -> float:
        """Cost of a synchronization message to every other server.

        Under fault injection every destination is attempted: a per-link
        fault charges its timeout and the loop moves on, so one dead link
        cannot abandon the remaining destinations or drop the cost already
        charged.  If any destination failed, the first fault is re-raised
        with ``cost`` set to the *whole* broadcast's simulated time —
        retrying callers re-broadcast to everyone (idempotent).
        """
        self._check(src)
        cost = 0.0
        first_fault: Optional[FaultInjectedError] = None
        for dst in range(self.num_servers):
            if dst == src:
                continue
            try:
                cost += self.remote_hop(src, dst, size)
            except FaultInjectedError as exc:
                cost += exc.cost
                if first_fault is None:
                    first_fault = exc
        if first_fault is not None:
            first_fault.cost = cost
            raise first_fault
        return cost

"""Physical data migration: the two-step copy/remove protocol (Section 3.2).

Given the :class:`~repro.core.migration.MigrationPlan` produced by phase 1
of the lightweight repartitioner, the executor:

1. **copy step** — for every move, the target server receives the vertex's
   payload (node record, properties, relationship records with their
   properties) and inserts it locally.  Insertion-only, so each target
   proceeds independently with no cross-partition locks;
2. **synchronization barrier** — every participating server confirms copy
   completion (cheap: no locks or resources held);
3. **remove step** — each source server marks its moved vertices
   *unavailable* (queries thereafter treat them as absent), converts or
   deletes their relationship records, and finally drops the node records.

Relationship bookkeeping follows the ownership convention: the primary
(property-bearing) record lives with the ``src`` endpoint's host; the
other side keeps a ghost.  The executor recomputes ghost/primary roles
against the *post-migration* catalog so that edges between two migrating
vertices, edges to third-party servers, and edges collapsing into a
single server are all handled.

Execution is **transactional**: every store mutation performed by the
copy step is journalled, and a failure before the catalog flips (a crash
window or message loss surviving all retries, a stale plan naming a
vertex a server no longer hosts) rolls the journal back so every store,
the catalog and the migration counters are exactly as they were before
``execute`` was called — the paper's "failure mid-migration cannot
corrupt the database" guarantee.  The aborted attempt surfaces as a
:class:`~repro.exceptions.MigrationAbortedError` carrying its wasted
simulated cost, and the same plan can be retried idempotently once the
fault clears.  After the catalog flips, the remaining work (the remove
step) is purely server-local and cannot fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.cluster.catalog import Catalog, LocationCache
from repro.cluster.faults import RetryPolicy
from repro.cluster.network import SimulatedNetwork
from repro.cluster.server import HermesServer
from repro.core.migration import MigrationPlan
from repro.exceptions import (
    ClusterError,
    FaultInjectedError,
    HermesError,
    MigrationAbortedError,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import DEFAULT_SIZE_BUCKETS


@dataclass
class MigrationReport:
    """Cost accounting of one physical migration."""

    vertices_moved: int = 0
    relationships_transferred: int = 0
    relationships_rewritten: int = 0
    bytes_transferred: int = 0
    copy_cost: float = 0.0
    barrier_cost: float = 0.0
    remove_cost: float = 0.0
    per_target: Dict[int, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.copy_cost + self.barrier_cost + self.remove_cost


@dataclass(frozen=True)
class MigrationStep:
    """One yielded unit of online-migration progress.

    ``kind`` is ``"copy"`` (one vertex replicated onto its target),
    ``"barrier"`` (participants confirm) or ``"remove"`` (one source
    copy retired after commit).  ``cost`` is the step's simulated
    seconds; ``servers`` the servers the step occupies on the event
    timeline.
    """

    kind: str
    cost: float
    servers: Tuple[int, ...] = ()


def _payload_size(payload: Dict[str, Any]) -> int:
    """Rough wire size: fixed record sizes + property payload estimate."""
    size = 64  # node record + framing
    for key, value in payload.get("properties", {}).items():
        size += len(key) + len(repr(value)) + 16
    for rel in payload.get("relationships", []):
        size += 80  # relationship record
        for key, value in rel.get("properties", {}).items():
            size += len(key) + len(repr(value)) + 16
    return size


class MigrationExecutor:
    """Executes migration plans against the servers."""

    def __init__(
        self,
        servers: List[HermesServer],
        catalog: Catalog,
        network: SimulatedNetwork,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        location_cache: Optional[LocationCache] = None,
    ):
        self.servers = servers
        self.catalog = catalog
        self.network = network
        self.retry = retry or RetryPolicy()
        self.location_cache = location_cache
        #: the undo journal of the migration currently inside ``execute``.
        #: None whenever no migration is in flight — both a committed and
        #: an aborted attempt must leave it None (the simtest auditor's
        #: journal-emptiness invariant between schedule steps).
        self.active_journal: Optional[List[Tuple]] = None
        #: double-write window of an *online* migration: vertex -> target
        #: server for every vertex whose copy-step has run but whose
        #: catalog entry has not flipped yet.  Writes that touch a
        #: windowed vertex mirror onto the target (``mirror_edge``);
        #: reads keep forwarding through the catalog to the source.
        #: Always empty outside ``migrate_steps``.
        self._window: Dict[int, int] = {}
        #: final placement of the online migration owning the window
        self._window_final_home: Optional[Dict[int, int]] = None
        #: called after every catalog commit (online or stop-the-world);
        #: in-flight traversals use this to re-resolve their frontiers.
        self.topology_listeners: List[Callable[[], None]] = []
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    @property
    def journal_open(self) -> bool:
        """Is a copy-step undo journal currently live?"""
        return self.active_journal is not None

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._vertices_moved = telemetry.counter(
            "migration_vertices_moved_total", "vertices physically migrated"
        )
        self._rels_transferred = telemetry.counter(
            "migration_relationships_transferred_total",
            "relationship records shipped in copy steps",
        )
        self._rels_rewritten = telemetry.counter(
            "migration_relationships_rewritten_total",
            "relationship records converted or deleted in remove steps",
        )
        self._bytes = telemetry.counter(
            "migration_bytes_total", "payload bytes shipped in copy steps"
        )
        self._phase_seconds = {
            phase: telemetry.counter(
                "migration_phase_seconds_total",
                "simulated seconds spent per migration phase",
                phase=phase,
            )
            for phase in ("copy", "barrier", "remove")
        }
        self._payload_sizes = telemetry.histogram(
            "migration_payload_bytes",
            "wire size of one vertex payload",
            buckets=DEFAULT_SIZE_BUCKETS,
        )

    # ------------------------------------------------------------------
    def execute(self, plan: MigrationPlan) -> MigrationReport:
        """Run the full two-step protocol for ``plan``.

        Raises :class:`~repro.exceptions.MigrationAbortedError` if the
        copy step or the barrier fails; the cluster is then rolled back
        to its exact pre-call state and the plan may be retried.
        """
        report = MigrationReport()
        if not plan.moves:
            return report
        final_home = self._final_placement(plan)
        #: reverse journal of every store mutation, for rollback on abort
        undo: List[Tuple] = []
        self.active_journal = undo
        payload_sizes: List[int] = []

        span = self.telemetry.span("migration", moves=plan.num_moves)
        try:
            copy_span = self.telemetry.span("migration.copy")
            payloads = self._copy_step(
                plan, final_home, report, undo, payload_sizes
            )
            copy_span.set_attribute("bytes", report.bytes_transferred)
            copy_span.finish(duration=report.copy_cost)

            barrier_span = self.telemetry.span("migration.barrier")
            report.barrier_cost = self._barrier(plan)
            barrier_span.finish(duration=report.barrier_cost)
        except HermesError as exc:
            if isinstance(exc, FaultInjectedError):
                # The timeouts and backoff of the failed attempt are real
                # simulated time even though no records moved.
                report.copy_cost += exc.cost
            self._rollback(undo)
            self.active_journal = None
            self.telemetry.counter(
                "migration_aborts_total", "migrations aborted and rolled back"
            ).inc()
            self.telemetry.event(
                "migration_aborted",
                moves=plan.num_moves,
                rolled_back=report.vertices_moved,
                reason=type(exc).__name__,
                error=str(exc),
            )
            span.set_attribute("aborted", True)
            span.finish(duration=report.copy_cost + report.barrier_cost)
            raise MigrationAbortedError(exc, report) from exc

        # The catalog flips between the steps: queries now route to the
        # fresh replicas while the originals are being removed.  The
        # migration participants update their location caches as part of
        # the commit; non-participants keep stale entries that resolve
        # via a forwarding hop on next use.
        for move in plan.moves:
            self.catalog.move(move.vertex, move.target)
            if self.location_cache is not None:
                self.location_cache.on_moved(move.vertex, move.source, move.target)
        # Past the commit point: the journal will never be replayed.
        self.active_journal = None
        self._notify_topology_change()

        remove_span = self.telemetry.span("migration.remove")
        self._remove_step(plan, final_home, payloads, report)
        remove_span.set_attribute(
            "relationships_rewritten", report.relationships_rewritten
        )
        remove_span.finish(duration=report.remove_cost)

        # Telemetry is published only once the migration is past its
        # abort points, so an aborted attempt leaves the counters and the
        # payload histogram exactly as they were.
        for size in payload_sizes:
            self._payload_sizes.observe(size)
        self._vertices_moved.inc(report.vertices_moved)
        self._rels_transferred.inc(report.relationships_transferred)
        self._rels_rewritten.inc(report.relationships_rewritten)
        self._bytes.inc(report.bytes_transferred)
        self._phase_seconds["copy"].inc(report.copy_cost)
        self._phase_seconds["barrier"].inc(report.barrier_cost)
        self._phase_seconds["remove"].inc(report.remove_cost)
        span.set_attribute("vertices_moved", report.vertices_moved)
        span.finish(duration=report.total_cost)
        return report

    def _final_placement(self, plan: MigrationPlan) -> Dict[int, int]:
        """Vertex -> server map *after* the plan completes."""
        placement = {move.vertex: move.target for move in plan.moves}
        return placement

    def _home_after(self, vertex: int, final_home: Dict[int, int]) -> int:
        override = final_home.get(vertex)
        if override is not None:
            return override
        return self.catalog.lookup(vertex)

    # ------------------------------------------------------------------
    # Step 1: copy
    # ------------------------------------------------------------------
    def _copy_step(
        self,
        plan: MigrationPlan,
        final_home: Dict[int, int],
        report: MigrationReport,
        undo: List[Tuple],
        payload_sizes: List[int],
    ) -> Dict[int, Dict[str, Any]]:
        """Replicate every moving vertex on its target server.

        Every store mutation appends its inverse to ``undo`` *after* it
        succeeds, so a failure at any point leaves a journal that undoes
        exactly the mutations that happened.
        """
        payloads: Dict[int, Dict[str, Any]] = {}
        for move in plan.moves:
            self._copy_one(move, final_home, report, undo, payload_sizes, payloads)
        return payloads

    def _copy_one(
        self,
        move,
        final_home: Dict[int, int],
        report: MigrationReport,
        undo: List[Tuple],
        payload_sizes: List[int],
        payloads: Dict[int, Dict[str, Any]],
    ) -> None:
        """Replicate one moving vertex on its target server (journalled)."""
        source = self.servers[move.source]
        target = self.servers[move.target]
        if not source.store.has_node(move.vertex):
            raise ClusterError(
                f"server {move.source} does not host vertex {move.vertex}"
            )
        payload = source.store.export_node(move.vertex)
        payloads[move.vertex] = payload
        size = _payload_size(payload)
        payload_sizes.append(size)
        report.bytes_transferred += size
        report.copy_cost += self._transfer(move.source, move.target, size)
        report.vertices_moved += 1
        report.per_target[move.target] = report.per_target.get(move.target, 0) + 1

        target.store.import_node(payload)
        undo.append(("import", move.target, move.vertex))
        for rel in payload["relationships"]:
            self._install_relationship(target, move.vertex, rel, final_home, undo)
            report.relationships_transferred += 1

    def _transfer(self, src: int, dst: int, size: int) -> float:
        """One copy-step record shipment, retried under injected faults."""
        if self.network.fault_injector is None:
            return self.network.transfer(src, dst, size)
        cost, wasted = self.retry.call(
            lambda: self.network.transfer(src, dst, size),
            injector=self.network.fault_injector,
            on_retry=self._on_retry,
        )
        return cost + wasted

    def _on_retry(self, exc: FaultInjectedError, pause: float) -> None:
        self.telemetry.counter(
            "migration_retries_total",
            "copy/barrier network operations retried after an injected fault",
        ).inc()

    def _install_relationship(
        self,
        target: HermesServer,
        arriving: int,
        rel: Dict[str, Any],
        final_home: Dict[int, int],
        undo: List[Tuple],
    ) -> None:
        """Create or merge one relationship record on the target server."""
        rel_id = rel["rel_id"]
        src, dst = rel["src"], rel["dst"]
        other = dst if arriving == src else src
        other_home = self._home_after(other, final_home)
        here = target.server_id
        primary_here = self._home_after(src, final_home) == here
        both_local_eventually = other_home == here

        if target.store.has_relationship(rel_id):
            # Counterpart already present (other endpoint lives here or
            # arrived earlier in this copy step): link the new endpoint in
            # and reconcile the primary/ghost role.  A mid-window write
            # whose other endpoint lives on the target was already linked
            # into the arriving copy's chain by ``create_relationship``
            # (it links every local endpoint, available or not) — the
            # mirror then only journals the attach so an abort still
            # detaches it, without double-linking the chain.
            if not target.store.chain_contains(arriving, rel_id):
                target.store.attach_endpoint(rel_id, arriving)
            undo.append(("attach", target.server_id, rel_id, arriving))
            existing = target.store.relationship(rel_id)
            should_be_ghost = not (primary_here or both_local_eventually)
            if existing.ghost and not should_be_ghost:
                target.store.set_ghost(rel_id, False)
                undo.append(("ghost", target.server_id, rel_id, True, {}))
            elif not existing.ghost and should_be_ghost:
                # Downgrading drops the property chain; capture it so a
                # rollback can restore the record byte-for-byte.
                old_props = target.store.relationship_properties(rel_id)
                target.store.set_ghost(rel_id, True)
                undo.append(("ghost", target.server_id, rel_id, False, old_props))
            if not should_be_ghost:
                # Merge properties: the primary payload may arrive second
                # when both endpoints migrate to the same server.
                for key, value in rel.get("properties", {}).items():
                    had = key in target.store.relationship_properties(rel_id)
                    old = target.store.get_relationship_property(rel_id, key)
                    target.store.set_relationship_property(rel_id, key, value)
                    undo.append(
                        ("prop", target.server_id, rel_id, key, had, old)
                    )
            return

        ghost = not (primary_here or both_local_eventually)
        properties = rel.get("properties", {}) if not ghost else None
        target.store.create_relationship(
            rel_id, src, dst, ghost=ghost, properties=properties or None
        )
        undo.append(("create_rel", target.server_id, rel_id))

    # ------------------------------------------------------------------
    # Rollback (abort path)
    # ------------------------------------------------------------------
    def _rollback(self, undo: List[Tuple]) -> None:
        """Undo the copy step's journalled mutations, newest first.

        Reverse order matters: a vertex's relationship records are
        detached/deleted before its imported node record is removed, and
        property merges are unwound before ghost roles are restored.
        """
        for action in reversed(undo):
            kind, server_id = action[0], action[1]
            store = self.servers[server_id].store
            if kind == "prop":
                _, _, rel_id, key, had, old = action
                if had:
                    store.set_relationship_property(rel_id, key, old)
                else:
                    store.remove_relationship_property(rel_id, key)
            elif kind == "ghost":
                _, _, rel_id, old_ghost, old_props = action
                store.set_ghost(rel_id, old_ghost)
                for key, value in old_props.items():
                    store.set_relationship_property(rel_id, key, value)
            elif kind == "attach":
                _, _, rel_id, node_id = action
                store.detach_endpoint(rel_id, node_id)
            elif kind == "create_rel":
                store.delete_relationship(action[2])
            elif kind == "import":
                # By now every relationship installed for this vertex has
                # been unwound, so its chain is empty again.
                store.remove_node_record(action[2])

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def _barrier(self, plan: MigrationPlan) -> float:
        """All participants confirm copy completion (no locks held)."""
        participants = {move.source for move in plan.moves}
        participants.update(move.target for move in plan.moves)
        cost = 0.0
        injector = self.network.fault_injector
        for server in participants:
            if injector is None:
                cost += self.network.broadcast(server, size=32)
            else:
                # A lost confirmation is re-broadcast; duplicates are
                # harmless (the barrier is idempotent by construction).
                confirmed, wasted = self.retry.call(
                    lambda s=server: self.network.broadcast(s, size=32),
                    injector=injector,
                    on_retry=self._on_retry,
                )
                cost += confirmed + wasted
        return cost

    # ------------------------------------------------------------------
    # Step 2: remove
    # ------------------------------------------------------------------
    def _remove_step(
        self,
        plan: MigrationPlan,
        final_home: Dict[int, int],
        payloads: Dict[int, Dict[str, Any]],
        report: MigrationReport,
    ) -> None:
        """Mark originals unavailable, fix up chains, drop the records."""
        # First pass: the unavailable state, so no query can lock them.
        for move in plan.moves:
            self.servers[move.source].store.set_available(move.vertex, False)
        # Second pass: relationship record surgery + node removal.
        for move in plan.moves:
            self._remove_one(move, final_home, report)

    def _remove_one(
        self,
        move,
        final_home: Dict[int, int],
        report: MigrationReport,
    ) -> None:
        """Retire one migrated vertex's source copy (post-commit, local)."""
        source = self.servers[move.source]
        store = source.store
        entries = list(
            store.neighbor_entries(move.vertex, include_unavailable=True)
        )
        for entry in entries:
            other = entry.neighbor
            other_here = (
                store.has_node(other)
                and self._home_after(other, final_home) == move.source
            )
            if other_here:
                # The edge now crosses partitions: keep the record for
                # the staying endpoint, null the migrated side, and
                # recompute its ghost role (primary follows src).
                store.detach_endpoint(entry.rel_id, move.vertex)
                record = store.relationship(entry.rel_id)
                should_be_ghost = (
                    self._home_after(record.src, final_home) != move.source
                )
                if record.ghost != should_be_ghost:
                    store.set_ghost(entry.rel_id, should_be_ghost)
                report.relationships_rewritten += 1
            else:
                store.delete_relationship(entry.rel_id)
                report.relationships_rewritten += 1
            report.remove_cost += self.network.local_visit()
        store.remove_node_record(move.vertex)
        report.remove_cost += self.network.local_visit()

    # ------------------------------------------------------------------
    # Online migration (double-write window)
    # ------------------------------------------------------------------
    def _notify_topology_change(self) -> None:
        for listener in self.topology_listeners:
            listener()

    def window_target(self, vertex: int) -> Optional[int]:
        """Target server of ``vertex``'s open double-write window, if any."""
        return self._window.get(vertex)

    @property
    def window_open(self) -> bool:
        """Is any vertex currently inside a double-write window?"""
        return bool(self._window)

    @property
    def window_vertices(self) -> Dict[int, int]:
        """Read-only view of the open double-write window (auditor hook)."""
        return dict(self._window)

    def mirror_edge(self, vertex: int, rel: Dict[str, Any]) -> None:
        """Apply one just-written relationship to ``vertex``'s window target.

        The write path calls this for every endpoint of a new edge that
        sits inside an open double-write window, after the write has
        fully succeeded on its primary/ghost hosts.  The record is
        installed on the target store with its *post-migration* ghost
        role and journalled into the live undo journal, so an aborted
        migration unwinds mirrored writes together with the copy-steps
        while the write itself stays durable on the source.  The
        shipment piggybacks on the migration channel and is charged no
        extra simulated cost.
        """
        target_id = self._window.get(vertex)
        if target_id is None or self.active_journal is None:
            return
        final_home = self._window_final_home or {}
        self._install_relationship(
            self.servers[target_id], vertex, rel, final_home, self.active_journal
        )

    def check_window_coherence(self) -> List[str]:
        """Audit the open double-write window (the simtest invariant).

        For every windowed vertex: the journal must be open, the target
        must hold a replica, the catalog must still route reads to the
        source (reads *forward* until commit), the source copy must
        still be available, and the two adjacency lists must agree —
        i.e. every write that landed during the window reached both
        sides.  Returns human-readable problems (empty when coherent).
        """
        problems: List[str] = []
        if self._window and not self.journal_open:
            problems.append("double-write window open without a live journal")
        for vertex, target_id in sorted(self._window.items()):
            try:
                source_id = self.catalog.lookup(vertex)
            except HermesError:
                problems.append(f"windowed vertex {vertex} left the catalog")
                continue
            if source_id == target_id:
                problems.append(
                    f"windowed vertex {vertex} already committed to "
                    f"server {target_id} with its window still open"
                )
                continue
            source = self.servers[source_id].store
            target = self.servers[target_id].store
            if not target.has_node(vertex):
                problems.append(
                    f"windowed vertex {vertex} has no replica on its "
                    f"target server {target_id}"
                )
                continue
            if not (source.has_node(vertex) and source.is_available(vertex)):
                problems.append(
                    f"windowed vertex {vertex} is unavailable on its "
                    f"source server {source_id} before commit"
                )
                continue
            if sorted(source.neighbors(vertex)) != sorted(target.neighbors(vertex)):
                problems.append(
                    f"windowed vertex {vertex} adjacency diverged between "
                    f"source {source_id} and target {target_id}"
                )
        return problems

    def migrate_steps(
        self, plan: MigrationPlan
    ) -> Generator[MigrationStep, None, MigrationReport]:
        """Online variant of :meth:`execute`: yield between copy-steps.

        Runs the same two-step protocol but one vertex at a time,
        yielding a :class:`MigrationStep` after every copy, after the
        barrier and after every remove so the event scheduler can
        interleave queries and writes with the migration.  Every copied
        vertex enters the double-write window until the (atomic) catalog
        commit: writes mirror onto the target via :meth:`mirror_edge`,
        reads keep forwarding to the source.  An abort rolls back
        copy-steps *and* mirrored writes through the shared undo journal
        and clears the window — exactly the pre-call state, as with the
        stop-the-world path.
        """
        report = MigrationReport()
        if not plan.moves:
            return report
        final_home = self._final_placement(plan)
        undo: List[Tuple] = []
        self.active_journal = undo
        self._window_final_home = final_home
        payload_sizes: List[int] = []
        payloads: Dict[int, Dict[str, Any]] = {}

        span = self.telemetry.span("migration", moves=plan.num_moves, online=True)
        try:
            copy_span = self.telemetry.span("migration.copy")
            for move in plan.moves:
                cost_before = report.copy_cost
                self._copy_one(
                    move, final_home, report, undo, payload_sizes, payloads
                )
                self._window[move.vertex] = move.target
                yield MigrationStep(
                    "copy",
                    report.copy_cost - cost_before,
                    (move.source, move.target),
                )
            copy_span.set_attribute("bytes", report.bytes_transferred)
            copy_span.finish(duration=report.copy_cost)

            barrier_span = self.telemetry.span("migration.barrier")
            report.barrier_cost = self._barrier(plan)
            barrier_span.finish(duration=report.barrier_cost)
            participants = sorted(
                {move.source for move in plan.moves}
                | {move.target for move in plan.moves}
            )
            yield MigrationStep("barrier", report.barrier_cost, tuple(participants))
        except HermesError as exc:
            if isinstance(exc, FaultInjectedError):
                report.copy_cost += exc.cost
            self._rollback(undo)
            self.active_journal = None
            self._window.clear()
            self._window_final_home = None
            self.telemetry.counter(
                "migration_aborts_total", "migrations aborted and rolled back"
            ).inc()
            self.telemetry.event(
                "migration_aborted",
                moves=plan.num_moves,
                rolled_back=report.vertices_moved,
                reason=type(exc).__name__,
                error=str(exc),
                online=True,
            )
            span.set_attribute("aborted", True)
            span.finish(duration=report.copy_cost + report.barrier_cost)
            raise MigrationAbortedError(exc, report) from exc

        # Atomic commit: the catalog flips for every move at once, the
        # window closes, and in-flight traversals are told to re-resolve.
        for move in plan.moves:
            self.catalog.move(move.vertex, move.target)
            if self.location_cache is not None:
                self.location_cache.on_moved(move.vertex, move.source, move.target)
        self.active_journal = None
        self._window.clear()
        self._window_final_home = None
        self._notify_topology_change()

        remove_span = self.telemetry.span("migration.remove")
        for move in plan.moves:
            self.servers[move.source].store.set_available(move.vertex, False)
        for move in plan.moves:
            cost_before = report.remove_cost
            self._remove_one(move, final_home, report)
            yield MigrationStep(
                "remove", report.remove_cost - cost_before, (move.source,)
            )
        remove_span.set_attribute(
            "relationships_rewritten", report.relationships_rewritten
        )
        remove_span.finish(duration=report.remove_cost)

        for size in payload_sizes:
            self._payload_sizes.observe(size)
        self._vertices_moved.inc(report.vertices_moved)
        self._rels_transferred.inc(report.relationships_transferred)
        self._rels_rewritten.inc(report.relationships_rewritten)
        self._bytes.inc(report.bytes_transferred)
        self._phase_seconds["copy"].inc(report.copy_cost)
        self._phase_seconds["barrier"].inc(report.barrier_cost)
        self._phase_seconds["remove"].inc(report.remove_cost)
        span.set_attribute("vertices_moved", report.vertices_moved)
        span.finish(duration=report.total_cost)
        return report

"""Physical data migration: the two-step copy/remove protocol (Section 3.2).

Given the :class:`~repro.core.migration.MigrationPlan` produced by phase 1
of the lightweight repartitioner, the executor:

1. **copy step** — for every move, the target server receives the vertex's
   payload (node record, properties, relationship records with their
   properties) and inserts it locally.  Insertion-only, so each target
   proceeds independently with no cross-partition locks;
2. **synchronization barrier** — every participating server confirms copy
   completion (cheap: no locks or resources held);
3. **remove step** — each source server marks its moved vertices
   *unavailable* (queries thereafter treat them as absent), converts or
   deletes their relationship records, and finally drops the node records.

Relationship bookkeeping follows the ownership convention: the primary
(property-bearing) record lives with the ``src`` endpoint's host; the
other side keeps a ghost.  The executor recomputes ghost/primary roles
against the *post-migration* catalog so that edges between two migrating
vertices, edges to third-party servers, and edges collapsing into a
single server are all handled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from typing import Optional

from repro.cluster.catalog import Catalog
from repro.cluster.network import SimulatedNetwork
from repro.cluster.server import HermesServer
from repro.core.migration import MigrationPlan
from repro.exceptions import ClusterError
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import DEFAULT_SIZE_BUCKETS


@dataclass
class MigrationReport:
    """Cost accounting of one physical migration."""

    vertices_moved: int = 0
    relationships_transferred: int = 0
    relationships_rewritten: int = 0
    bytes_transferred: int = 0
    copy_cost: float = 0.0
    barrier_cost: float = 0.0
    remove_cost: float = 0.0
    per_target: Dict[int, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.copy_cost + self.barrier_cost + self.remove_cost


def _payload_size(payload: Dict[str, Any]) -> int:
    """Rough wire size: fixed record sizes + property payload estimate."""
    size = 64  # node record + framing
    for key, value in payload.get("properties", {}).items():
        size += len(key) + len(repr(value)) + 16
    for rel in payload.get("relationships", []):
        size += 80  # relationship record
        for key, value in rel.get("properties", {}).items():
            size += len(key) + len(repr(value)) + 16
    return size


class MigrationExecutor:
    """Executes migration plans against the servers."""

    def __init__(
        self,
        servers: List[HermesServer],
        catalog: Catalog,
        network: SimulatedNetwork,
        telemetry: Optional[Telemetry] = None,
    ):
        self.servers = servers
        self.catalog = catalog
        self.network = network
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._vertices_moved = telemetry.counter(
            "migration_vertices_moved_total", "vertices physically migrated"
        )
        self._rels_transferred = telemetry.counter(
            "migration_relationships_transferred_total",
            "relationship records shipped in copy steps",
        )
        self._rels_rewritten = telemetry.counter(
            "migration_relationships_rewritten_total",
            "relationship records converted or deleted in remove steps",
        )
        self._bytes = telemetry.counter(
            "migration_bytes_total", "payload bytes shipped in copy steps"
        )
        self._phase_seconds = {
            phase: telemetry.counter(
                "migration_phase_seconds_total",
                "simulated seconds spent per migration phase",
                phase=phase,
            )
            for phase in ("copy", "barrier", "remove")
        }
        self._payload_sizes = telemetry.histogram(
            "migration_payload_bytes",
            "wire size of one vertex payload",
            buckets=DEFAULT_SIZE_BUCKETS,
        )

    # ------------------------------------------------------------------
    def execute(self, plan: MigrationPlan) -> MigrationReport:
        """Run the full two-step protocol for ``plan``."""
        report = MigrationReport()
        if not plan.moves:
            return report
        final_home = self._final_placement(plan)

        span = self.telemetry.span("migration", moves=plan.num_moves)
        copy_span = self.telemetry.span("migration.copy")
        payloads = self._copy_step(plan, final_home, report)
        copy_span.set_attribute("bytes", report.bytes_transferred)
        copy_span.finish(duration=report.copy_cost)

        barrier_span = self.telemetry.span("migration.barrier")
        report.barrier_cost = self._barrier(plan)
        barrier_span.finish(duration=report.barrier_cost)

        # The catalog flips between the steps: queries now route to the
        # fresh replicas while the originals are being removed.
        for move in plan.moves:
            self.catalog.move(move.vertex, move.target)

        remove_span = self.telemetry.span("migration.remove")
        self._remove_step(plan, final_home, payloads, report)
        remove_span.set_attribute(
            "relationships_rewritten", report.relationships_rewritten
        )
        remove_span.finish(duration=report.remove_cost)

        self._vertices_moved.inc(report.vertices_moved)
        self._rels_transferred.inc(report.relationships_transferred)
        self._rels_rewritten.inc(report.relationships_rewritten)
        self._bytes.inc(report.bytes_transferred)
        self._phase_seconds["copy"].inc(report.copy_cost)
        self._phase_seconds["barrier"].inc(report.barrier_cost)
        self._phase_seconds["remove"].inc(report.remove_cost)
        span.set_attribute("vertices_moved", report.vertices_moved)
        span.finish(duration=report.total_cost)
        return report

    def _final_placement(self, plan: MigrationPlan) -> Dict[int, int]:
        """Vertex -> server map *after* the plan completes."""
        placement = {move.vertex: move.target for move in plan.moves}
        return placement

    def _home_after(self, vertex: int, final_home: Dict[int, int]) -> int:
        override = final_home.get(vertex)
        if override is not None:
            return override
        return self.catalog.lookup(vertex)

    # ------------------------------------------------------------------
    # Step 1: copy
    # ------------------------------------------------------------------
    def _copy_step(
        self,
        plan: MigrationPlan,
        final_home: Dict[int, int],
        report: MigrationReport,
    ) -> Dict[int, Dict[str, Any]]:
        """Replicate every moving vertex on its target server."""
        payloads: Dict[int, Dict[str, Any]] = {}
        for move in plan.moves:
            source = self.servers[move.source]
            target = self.servers[move.target]
            if not source.store.has_node(move.vertex):
                raise ClusterError(
                    f"server {move.source} does not host vertex {move.vertex}"
                )
            payload = source.store.export_node(move.vertex)
            payloads[move.vertex] = payload
            size = _payload_size(payload)
            self._payload_sizes.observe(size)
            report.bytes_transferred += size
            report.copy_cost += self.network.transfer(move.source, move.target, size)
            report.vertices_moved += 1
            report.per_target[move.target] = report.per_target.get(move.target, 0) + 1

            target.store.import_node(payload)
            for rel in payload["relationships"]:
                self._install_relationship(target, move.vertex, rel, final_home)
                report.relationships_transferred += 1
        return payloads

    def _install_relationship(
        self,
        target: HermesServer,
        arriving: int,
        rel: Dict[str, Any],
        final_home: Dict[int, int],
    ) -> None:
        """Create or merge one relationship record on the target server."""
        rel_id = rel["rel_id"]
        src, dst = rel["src"], rel["dst"]
        other = dst if arriving == src else src
        other_home = self._home_after(other, final_home)
        here = target.server_id
        primary_here = self._home_after(src, final_home) == here
        both_local_eventually = other_home == here

        if target.store.has_relationship(rel_id):
            # Counterpart already present (other endpoint lives here or
            # arrived earlier in this copy step): link the new endpoint in
            # and reconcile the primary/ghost role.
            target.store.attach_endpoint(rel_id, arriving)
            existing = target.store.relationship(rel_id)
            should_be_ghost = not (primary_here or both_local_eventually)
            if existing.ghost and not should_be_ghost:
                target.store.set_ghost(rel_id, False)
            elif not existing.ghost and should_be_ghost:
                target.store.set_ghost(rel_id, True)
            if not should_be_ghost:
                # Merge properties: the primary payload may arrive second
                # when both endpoints migrate to the same server.
                for key, value in rel.get("properties", {}).items():
                    target.store.set_relationship_property(rel_id, key, value)
            return

        ghost = not (primary_here or both_local_eventually)
        properties = rel.get("properties", {}) if not ghost else None
        target.store.create_relationship(
            rel_id, src, dst, ghost=ghost, properties=properties or None
        )

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def _barrier(self, plan: MigrationPlan) -> float:
        """All participants confirm copy completion (no locks held)."""
        participants = {move.source for move in plan.moves}
        participants.update(move.target for move in plan.moves)
        cost = 0.0
        for server in participants:
            cost += self.network.broadcast(server, size=32)
        return cost

    # ------------------------------------------------------------------
    # Step 2: remove
    # ------------------------------------------------------------------
    def _remove_step(
        self,
        plan: MigrationPlan,
        final_home: Dict[int, int],
        payloads: Dict[int, Dict[str, Any]],
        report: MigrationReport,
    ) -> None:
        """Mark originals unavailable, fix up chains, drop the records."""
        # First pass: the unavailable state, so no query can lock them.
        for move in plan.moves:
            self.servers[move.source].store.set_available(move.vertex, False)
        # Second pass: relationship record surgery + node removal.
        for move in plan.moves:
            source = self.servers[move.source]
            store = source.store
            entries = list(
                store.neighbor_entries(move.vertex, include_unavailable=True)
            )
            for entry in entries:
                other = entry.neighbor
                other_here = (
                    store.has_node(other)
                    and self._home_after(other, final_home) == move.source
                )
                if other_here:
                    # The edge now crosses partitions: keep the record for
                    # the staying endpoint, null the migrated side, and
                    # recompute its ghost role (primary follows src).
                    store.detach_endpoint(entry.rel_id, move.vertex)
                    record = store.relationship(entry.rel_id)
                    should_be_ghost = (
                        self._home_after(record.src, final_home) != move.source
                    )
                    if record.ghost != should_be_ghost:
                        store.set_ghost(entry.rel_id, should_be_ghost)
                    report.relationships_rewritten += 1
                else:
                    store.delete_relationship(entry.rel_id)
                    report.relationships_rewritten += 1
                report.remove_cost += self.network.local_visit()
            store.remove_node_record(move.vertex)
            report.remove_cost += self.network.local_visit()

"""Physical data migration: the two-step copy/remove protocol (Section 3.2).

Given the :class:`~repro.core.migration.MigrationPlan` produced by phase 1
of the lightweight repartitioner, the executor:

1. **copy step** — for every move, the target server receives the vertex's
   payload (node record, properties, relationship records with their
   properties) and inserts it locally.  Insertion-only, so each target
   proceeds independently with no cross-partition locks;
2. **synchronization barrier** — every participating server confirms copy
   completion (cheap: no locks or resources held);
3. **remove step** — each source server marks its moved vertices
   *unavailable* (queries thereafter treat them as absent), converts or
   deletes their relationship records, and finally drops the node records.

Relationship bookkeeping follows the ownership convention: the primary
(property-bearing) record lives with the ``src`` endpoint's host; the
other side keeps a ghost.  The executor recomputes ghost/primary roles
against the *post-migration* catalog so that edges between two migrating
vertices, edges to third-party servers, and edges collapsing into a
single server are all handled.

Execution is **transactional**: every store mutation performed by the
copy step is journalled, and a failure before the catalog flips (a crash
window or message loss surviving all retries, a stale plan naming a
vertex a server no longer hosts) rolls the journal back so every store,
the catalog and the migration counters are exactly as they were before
``execute`` was called — the paper's "failure mid-migration cannot
corrupt the database" guarantee.  The aborted attempt surfaces as a
:class:`~repro.exceptions.MigrationAbortedError` carrying its wasted
simulated cost, and the same plan can be retried idempotently once the
fault clears.  After the catalog flips, the remaining work (the remove
step) is purely server-local and cannot fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from typing import Optional

from repro.cluster.catalog import Catalog, LocationCache
from repro.cluster.faults import RetryPolicy
from repro.cluster.network import SimulatedNetwork
from repro.cluster.server import HermesServer
from repro.core.migration import MigrationPlan
from repro.exceptions import (
    ClusterError,
    FaultInjectedError,
    HermesError,
    MigrationAbortedError,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import DEFAULT_SIZE_BUCKETS


@dataclass
class MigrationReport:
    """Cost accounting of one physical migration."""

    vertices_moved: int = 0
    relationships_transferred: int = 0
    relationships_rewritten: int = 0
    bytes_transferred: int = 0
    copy_cost: float = 0.0
    barrier_cost: float = 0.0
    remove_cost: float = 0.0
    per_target: Dict[int, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.copy_cost + self.barrier_cost + self.remove_cost


def _payload_size(payload: Dict[str, Any]) -> int:
    """Rough wire size: fixed record sizes + property payload estimate."""
    size = 64  # node record + framing
    for key, value in payload.get("properties", {}).items():
        size += len(key) + len(repr(value)) + 16
    for rel in payload.get("relationships", []):
        size += 80  # relationship record
        for key, value in rel.get("properties", {}).items():
            size += len(key) + len(repr(value)) + 16
    return size


class MigrationExecutor:
    """Executes migration plans against the servers."""

    def __init__(
        self,
        servers: List[HermesServer],
        catalog: Catalog,
        network: SimulatedNetwork,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        location_cache: Optional[LocationCache] = None,
    ):
        self.servers = servers
        self.catalog = catalog
        self.network = network
        self.retry = retry or RetryPolicy()
        self.location_cache = location_cache
        #: the undo journal of the migration currently inside ``execute``.
        #: None whenever no migration is in flight — both a committed and
        #: an aborted attempt must leave it None (the simtest auditor's
        #: journal-emptiness invariant between schedule steps).
        self.active_journal: Optional[List[Tuple]] = None
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    @property
    def journal_open(self) -> bool:
        """Is a copy-step undo journal currently live?"""
        return self.active_journal is not None

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._vertices_moved = telemetry.counter(
            "migration_vertices_moved_total", "vertices physically migrated"
        )
        self._rels_transferred = telemetry.counter(
            "migration_relationships_transferred_total",
            "relationship records shipped in copy steps",
        )
        self._rels_rewritten = telemetry.counter(
            "migration_relationships_rewritten_total",
            "relationship records converted or deleted in remove steps",
        )
        self._bytes = telemetry.counter(
            "migration_bytes_total", "payload bytes shipped in copy steps"
        )
        self._phase_seconds = {
            phase: telemetry.counter(
                "migration_phase_seconds_total",
                "simulated seconds spent per migration phase",
                phase=phase,
            )
            for phase in ("copy", "barrier", "remove")
        }
        self._payload_sizes = telemetry.histogram(
            "migration_payload_bytes",
            "wire size of one vertex payload",
            buckets=DEFAULT_SIZE_BUCKETS,
        )

    # ------------------------------------------------------------------
    def execute(self, plan: MigrationPlan) -> MigrationReport:
        """Run the full two-step protocol for ``plan``.

        Raises :class:`~repro.exceptions.MigrationAbortedError` if the
        copy step or the barrier fails; the cluster is then rolled back
        to its exact pre-call state and the plan may be retried.
        """
        report = MigrationReport()
        if not plan.moves:
            return report
        final_home = self._final_placement(plan)
        #: reverse journal of every store mutation, for rollback on abort
        undo: List[Tuple] = []
        self.active_journal = undo
        payload_sizes: List[int] = []

        span = self.telemetry.span("migration", moves=plan.num_moves)
        try:
            copy_span = self.telemetry.span("migration.copy")
            payloads = self._copy_step(
                plan, final_home, report, undo, payload_sizes
            )
            copy_span.set_attribute("bytes", report.bytes_transferred)
            copy_span.finish(duration=report.copy_cost)

            barrier_span = self.telemetry.span("migration.barrier")
            report.barrier_cost = self._barrier(plan)
            barrier_span.finish(duration=report.barrier_cost)
        except HermesError as exc:
            if isinstance(exc, FaultInjectedError):
                # The timeouts and backoff of the failed attempt are real
                # simulated time even though no records moved.
                report.copy_cost += exc.cost
            self._rollback(undo)
            self.active_journal = None
            self.telemetry.counter(
                "migration_aborts_total", "migrations aborted and rolled back"
            ).inc()
            self.telemetry.event(
                "migration_aborted",
                moves=plan.num_moves,
                rolled_back=report.vertices_moved,
                reason=type(exc).__name__,
                error=str(exc),
            )
            span.set_attribute("aborted", True)
            span.finish(duration=report.copy_cost + report.barrier_cost)
            raise MigrationAbortedError(exc, report) from exc

        # The catalog flips between the steps: queries now route to the
        # fresh replicas while the originals are being removed.  The
        # migration participants update their location caches as part of
        # the commit; non-participants keep stale entries that resolve
        # via a forwarding hop on next use.
        for move in plan.moves:
            self.catalog.move(move.vertex, move.target)
            if self.location_cache is not None:
                self.location_cache.on_moved(move.vertex, move.source, move.target)
        # Past the commit point: the journal will never be replayed.
        self.active_journal = None

        remove_span = self.telemetry.span("migration.remove")
        self._remove_step(plan, final_home, payloads, report)
        remove_span.set_attribute(
            "relationships_rewritten", report.relationships_rewritten
        )
        remove_span.finish(duration=report.remove_cost)

        # Telemetry is published only once the migration is past its
        # abort points, so an aborted attempt leaves the counters and the
        # payload histogram exactly as they were.
        for size in payload_sizes:
            self._payload_sizes.observe(size)
        self._vertices_moved.inc(report.vertices_moved)
        self._rels_transferred.inc(report.relationships_transferred)
        self._rels_rewritten.inc(report.relationships_rewritten)
        self._bytes.inc(report.bytes_transferred)
        self._phase_seconds["copy"].inc(report.copy_cost)
        self._phase_seconds["barrier"].inc(report.barrier_cost)
        self._phase_seconds["remove"].inc(report.remove_cost)
        span.set_attribute("vertices_moved", report.vertices_moved)
        span.finish(duration=report.total_cost)
        return report

    def _final_placement(self, plan: MigrationPlan) -> Dict[int, int]:
        """Vertex -> server map *after* the plan completes."""
        placement = {move.vertex: move.target for move in plan.moves}
        return placement

    def _home_after(self, vertex: int, final_home: Dict[int, int]) -> int:
        override = final_home.get(vertex)
        if override is not None:
            return override
        return self.catalog.lookup(vertex)

    # ------------------------------------------------------------------
    # Step 1: copy
    # ------------------------------------------------------------------
    def _copy_step(
        self,
        plan: MigrationPlan,
        final_home: Dict[int, int],
        report: MigrationReport,
        undo: List[Tuple],
        payload_sizes: List[int],
    ) -> Dict[int, Dict[str, Any]]:
        """Replicate every moving vertex on its target server.

        Every store mutation appends its inverse to ``undo`` *after* it
        succeeds, so a failure at any point leaves a journal that undoes
        exactly the mutations that happened.
        """
        payloads: Dict[int, Dict[str, Any]] = {}
        for move in plan.moves:
            source = self.servers[move.source]
            target = self.servers[move.target]
            if not source.store.has_node(move.vertex):
                raise ClusterError(
                    f"server {move.source} does not host vertex {move.vertex}"
                )
            payload = source.store.export_node(move.vertex)
            payloads[move.vertex] = payload
            size = _payload_size(payload)
            payload_sizes.append(size)
            report.bytes_transferred += size
            report.copy_cost += self._transfer(move.source, move.target, size)
            report.vertices_moved += 1
            report.per_target[move.target] = report.per_target.get(move.target, 0) + 1

            target.store.import_node(payload)
            undo.append(("import", move.target, move.vertex))
            for rel in payload["relationships"]:
                self._install_relationship(
                    target, move.vertex, rel, final_home, undo
                )
                report.relationships_transferred += 1
        return payloads

    def _transfer(self, src: int, dst: int, size: int) -> float:
        """One copy-step record shipment, retried under injected faults."""
        if self.network.fault_injector is None:
            return self.network.transfer(src, dst, size)
        cost, wasted = self.retry.call(
            lambda: self.network.transfer(src, dst, size),
            injector=self.network.fault_injector,
            on_retry=self._on_retry,
        )
        return cost + wasted

    def _on_retry(self, exc: FaultInjectedError, pause: float) -> None:
        self.telemetry.counter(
            "migration_retries_total",
            "copy/barrier network operations retried after an injected fault",
        ).inc()

    def _install_relationship(
        self,
        target: HermesServer,
        arriving: int,
        rel: Dict[str, Any],
        final_home: Dict[int, int],
        undo: List[Tuple],
    ) -> None:
        """Create or merge one relationship record on the target server."""
        rel_id = rel["rel_id"]
        src, dst = rel["src"], rel["dst"]
        other = dst if arriving == src else src
        other_home = self._home_after(other, final_home)
        here = target.server_id
        primary_here = self._home_after(src, final_home) == here
        both_local_eventually = other_home == here

        if target.store.has_relationship(rel_id):
            # Counterpart already present (other endpoint lives here or
            # arrived earlier in this copy step): link the new endpoint in
            # and reconcile the primary/ghost role.
            target.store.attach_endpoint(rel_id, arriving)
            undo.append(("attach", target.server_id, rel_id, arriving))
            existing = target.store.relationship(rel_id)
            should_be_ghost = not (primary_here or both_local_eventually)
            if existing.ghost and not should_be_ghost:
                target.store.set_ghost(rel_id, False)
                undo.append(("ghost", target.server_id, rel_id, True, {}))
            elif not existing.ghost and should_be_ghost:
                # Downgrading drops the property chain; capture it so a
                # rollback can restore the record byte-for-byte.
                old_props = target.store.relationship_properties(rel_id)
                target.store.set_ghost(rel_id, True)
                undo.append(("ghost", target.server_id, rel_id, False, old_props))
            if not should_be_ghost:
                # Merge properties: the primary payload may arrive second
                # when both endpoints migrate to the same server.
                for key, value in rel.get("properties", {}).items():
                    had = key in target.store.relationship_properties(rel_id)
                    old = target.store.get_relationship_property(rel_id, key)
                    target.store.set_relationship_property(rel_id, key, value)
                    undo.append(
                        ("prop", target.server_id, rel_id, key, had, old)
                    )
            return

        ghost = not (primary_here or both_local_eventually)
        properties = rel.get("properties", {}) if not ghost else None
        target.store.create_relationship(
            rel_id, src, dst, ghost=ghost, properties=properties or None
        )
        undo.append(("create_rel", target.server_id, rel_id))

    # ------------------------------------------------------------------
    # Rollback (abort path)
    # ------------------------------------------------------------------
    def _rollback(self, undo: List[Tuple]) -> None:
        """Undo the copy step's journalled mutations, newest first.

        Reverse order matters: a vertex's relationship records are
        detached/deleted before its imported node record is removed, and
        property merges are unwound before ghost roles are restored.
        """
        for action in reversed(undo):
            kind, server_id = action[0], action[1]
            store = self.servers[server_id].store
            if kind == "prop":
                _, _, rel_id, key, had, old = action
                if had:
                    store.set_relationship_property(rel_id, key, old)
                else:
                    store.remove_relationship_property(rel_id, key)
            elif kind == "ghost":
                _, _, rel_id, old_ghost, old_props = action
                store.set_ghost(rel_id, old_ghost)
                for key, value in old_props.items():
                    store.set_relationship_property(rel_id, key, value)
            elif kind == "attach":
                _, _, rel_id, node_id = action
                store.detach_endpoint(rel_id, node_id)
            elif kind == "create_rel":
                store.delete_relationship(action[2])
            elif kind == "import":
                # By now every relationship installed for this vertex has
                # been unwound, so its chain is empty again.
                store.remove_node_record(action[2])

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def _barrier(self, plan: MigrationPlan) -> float:
        """All participants confirm copy completion (no locks held)."""
        participants = {move.source for move in plan.moves}
        participants.update(move.target for move in plan.moves)
        cost = 0.0
        injector = self.network.fault_injector
        for server in participants:
            if injector is None:
                cost += self.network.broadcast(server, size=32)
            else:
                # A lost confirmation is re-broadcast; duplicates are
                # harmless (the barrier is idempotent by construction).
                confirmed, wasted = self.retry.call(
                    lambda s=server: self.network.broadcast(s, size=32),
                    injector=injector,
                    on_retry=self._on_retry,
                )
                cost += confirmed + wasted
        return cost

    # ------------------------------------------------------------------
    # Step 2: remove
    # ------------------------------------------------------------------
    def _remove_step(
        self,
        plan: MigrationPlan,
        final_home: Dict[int, int],
        payloads: Dict[int, Dict[str, Any]],
        report: MigrationReport,
    ) -> None:
        """Mark originals unavailable, fix up chains, drop the records."""
        # First pass: the unavailable state, so no query can lock them.
        for move in plan.moves:
            self.servers[move.source].store.set_available(move.vertex, False)
        # Second pass: relationship record surgery + node removal.
        for move in plan.moves:
            source = self.servers[move.source]
            store = source.store
            entries = list(
                store.neighbor_entries(move.vertex, include_unavailable=True)
            )
            for entry in entries:
                other = entry.neighbor
                other_here = (
                    store.has_node(other)
                    and self._home_after(other, final_home) == move.source
                )
                if other_here:
                    # The edge now crosses partitions: keep the record for
                    # the staying endpoint, null the migrated side, and
                    # recompute its ghost role (primary follows src).
                    store.detach_endpoint(entry.rel_id, move.vertex)
                    record = store.relationship(entry.rel_id)
                    should_be_ghost = (
                        self._home_after(record.src, final_home) != move.source
                    )
                    if record.ghost != should_be_ghost:
                        store.set_ghost(entry.rel_id, should_be_ghost)
                    report.relationships_rewritten += 1
                else:
                    store.delete_relationship(entry.rel_id)
                    report.relationships_rewritten += 1
                report.remove_cost += self.network.local_visit()
            store.remove_node_record(move.vertex)
            report.remove_cost += self.network.local_visit()

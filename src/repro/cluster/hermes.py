"""HermesCluster: the distributed graph database facade (Figure 6).

One object wires together every substrate: per-server storage engines,
the catalog, the simulated network, the traversal engine, the lightweight
repartitioner + physical migration executor, and the static partitioners
used for initial placement.  The evaluation harness and the examples talk
to this class only.

The cluster also maintains two simulation-level conveniences the real
system distributes across servers:

* ``graph`` — a :class:`~repro.graph.SocialGraph` mirror of the logical
  graph (adjacency + vertex weights).  Hosting servers know their local
  adjacency; the mirror stands in for that local knowledge when the
  repartitioner forwards counter updates for migrating vertices, and it
  gives the METIS baseline the global view it genuinely requires.
* ``aux`` — the :class:`~repro.core.AuxiliaryData` that in Hermes is
  sharded per server; centralizing it changes nothing observable because
  every read the algorithm performs is one a hosting server could answer
  locally.  Pass ``sharded_aux=True`` to run on the paper's per-server
  :class:`~repro.core.ShardedAuxiliaryData` layout instead — the
  repartitioner produces identical moves either way.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster import server as server_states
from repro.cluster.catalog import Catalog, LocationCache
from repro.cluster.durability import ServerJournal, logical_store_snapshot
from repro.cluster.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.cluster.migration_executor import (
    MigrationExecutor,
    MigrationReport,
    MigrationStep,
)
from repro.concurrency.config import ConcurrencyConfig
from repro.cluster.network import NetworkConfig, SimulatedNetwork
from repro.cluster.server import HermesServer
from repro.cluster.traversal import TraversalEngine, TraversalResult
from repro.core.auxiliary import AuxiliaryData
from repro.core.config import RepartitionerConfig
from repro.core.sharded import ShardedAuxiliaryData
from repro.core.migration import build_migration_plan
from repro.core.repartitioner import LightweightRepartitioner, RepartitionResult
from repro.core.triggers import ImbalanceTrigger, TriggerDecision
from repro.exceptions import (
    ClusterError,
    FaultInjectedError,
    MigrationAbortedError,
    ServerDownError,
)
from repro.graph.adjacency import SocialGraph
from repro.storage.graph_store import GraphStore
from repro.partitioning.base import Partitioner, Partitioning
from repro.partitioning.hashing import HashPartitioner
from repro.telemetry import Telemetry, export_jsonl, installed, summary_text


class HermesCluster:
    """A simulated multi-server Hermes deployment."""

    #: process-wide cluster numbering, used as a telemetry label
    _ids = itertools.count()

    def __init__(
        self,
        num_servers: int,
        network: Optional[NetworkConfig] = None,
        repartitioner: Optional[RepartitionerConfig] = None,
        lock_timeout: float = 1.0,
        track_weights: bool = True,
        sharded_aux: bool = False,
        telemetry: Optional[Telemetry] = None,
        concurrency: Optional[ConcurrencyConfig] = None,
        durability: bool = False,
    ):
        if num_servers < 1:
            raise ClusterError("need at least one server")
        self.num_servers = num_servers
        self.now = 0.0
        self.faults: Optional[FaultInjector] = None
        # Resolution order: explicit hub, then the process-wide installed
        # hub (the runner's --telemetry-out path), then a private hub with
        # metrics on but recording off.  The hub is always *real* — the
        # registry backs the legacy per-server counter attributes.
        self.telemetry = telemetry or installed() or Telemetry()
        self.telemetry.set_clock(lambda: self.now)
        # Distinguishes this cluster's per-server series when several
        # clusters share one installed hub (e.g. the Figure 9 baselines).
        self.cluster_id = next(HermesCluster._ids)
        self.network = SimulatedNetwork(
            num_servers,
            network,
            telemetry=self.telemetry,
            labels={"cluster": self.cluster_id},
        )
        self.servers: List[HermesServer] = [
            HermesServer(
                server_id,
                num_servers,
                clock=lambda: self.now,
                lock_timeout=lock_timeout,
                telemetry=self.telemetry,
                labels={"cluster": self.cluster_id},
            )
            for server_id in range(num_servers)
        ]
        self.catalog = Catalog(num_servers)
        self.location_cache = LocationCache(
            self.catalog, num_servers, telemetry=self.telemetry
        )
        self.graph = SocialGraph()
        self.aux = (
            ShardedAuxiliaryData(num_servers)
            if sharded_aux
            else AuxiliaryData(num_servers)
        )
        self.repartitioner_config = repartitioner or RepartitionerConfig()
        self.trigger = ImbalanceTrigger(
            self.repartitioner_config.epsilon, telemetry=self.telemetry
        )
        self.track_weights = track_weights
        self._engine = TraversalEngine(
            self.servers,
            self.catalog,
            self.network,
            telemetry=self.telemetry,
            location_cache=self.location_cache,
        )
        self._executor = MigrationExecutor(
            self.servers,
            self.catalog,
            self.network,
            telemetry=self.telemetry,
            location_cache=self.location_cache,
        )
        self._placer = HashPartitioner()
        #: optional WorkloadModel observing traversal traffic (see
        #: attach_workload_model); None keeps the read path untouched
        self.workload_model = None
        #: event-queue scheduler knobs; the default (enabled=False) keeps
        #: every operation running serially, byte-identical to the
        #: historical simulator
        self.concurrency = concurrency or ConcurrencyConfig()
        # In-flight traversals re-resolve their frontiers when a
        # migration commits underneath them (serial mode never observes
        # the epoch change: no traversal is paused during a migration).
        self._executor.topology_listeners.append(self._engine.note_topology_change)
        self._lock_timeout = lock_timeout
        #: WAL-backed per-server journals (crash-recovery episodes); off by
        #: default so the historical simulation stays byte-identical.
        self.durability = durability
        self.journals: Dict[int, ServerJournal] = {}
        #: one entry per completed recovery episode: the durable pre-crash
        #: image and the post-rebuild snapshot (audited by the simtest
        #: recovery-fidelity invariant on every sweep)
        self.recovery_log: List[Dict[str, Any]] = []
        if durability:
            for server in self.servers:
                journal = ServerJournal()
                journal.attach(server.store)
                self.journals[server.server_id] = journal

    # ==================================================================
    # Workload model
    # ==================================================================
    def attach_workload_model(self, model) -> None:
        """Feed traversal traffic into a WorkloadModel (None detaches).

        While attached, every frontier expansion the traversal engine
        performs becomes one :meth:`~repro.workloads.model.WorkloadModel.
        observe_edge` call, and the cluster clock drives the model's
        decay clock.  Observation is passive — costs, schedules and
        results of the read path are unchanged; the model only becomes
        *active* when its heat is attached to the auxiliary data for a
        workload-aware rebalance (``RepartitionerConfig.workload_alpha``).
        """
        if model is not None:
            model.advance(self.now)
        self.workload_model = model
        self._engine.workload_model = model

    # ==================================================================
    # Fault injection
    # ==================================================================
    def attach_faults(
        self,
        plan: Optional[FaultPlan],
        retry: Optional[RetryPolicy] = None,
    ) -> Optional[FaultInjector]:
        """Install a fault-injection plan (or with None, remove it).

        Wires one shared :class:`~repro.cluster.faults.FaultInjector` into
        the network and every server, and the retry policy into the
        traversal engine and migration executor.  Returns the injector so
        tests can inspect it.
        """
        if plan is None:
            self.faults = None
            self.network.attach_faults(None)
            for server in self.servers:
                server.attach_faults(None)
            return None
        self.faults = FaultInjector(
            plan, clock=lambda: self.now, telemetry=self.telemetry
        )
        self.network.attach_faults(self.faults)
        for server in self.servers:
            server.attach_faults(self.faults)
        if retry is not None:
            self._engine.retry = retry
            self._executor.retry = retry
        return self.faults

    def _advance(self, cost: float) -> None:
        """Fold an operation's simulated cost into the cluster clock."""
        self.now += cost
        if self.faults is not None:
            # The operation's in-flight time is now part of the clock.
            self.faults.reset()
        if self.workload_model is not None:
            self.workload_model.advance(self.now)

    # ==================================================================
    # Loading
    # ==================================================================
    @classmethod
    def from_graph(
        cls,
        graph: SocialGraph,
        num_servers: int,
        partitioner: Optional[Partitioner] = None,
        partitioning: Optional[Partitioning] = None,
        **kwargs,
    ) -> "HermesCluster":
        """Build a cluster and bulk-load a graph.

        Either give an explicit ``partitioning`` or a ``partitioner`` to
        compute the initial placement (default: random hash).
        """
        cluster = cls(num_servers, **kwargs)
        if partitioning is None:
            partitioning = (partitioner or HashPartitioner()).partition(
                graph, num_servers
            )
        cluster.load(graph, partitioning)
        return cluster

    def load(self, graph: SocialGraph, partitioning: Partitioning) -> None:
        """Bulk-load: nodes to their partitions, edges with ghosts."""
        if self.graph.num_vertices:
            raise ClusterError("cluster already loaded")
        for vertex in graph.vertices():
            server = partitioning.partition_of(vertex)
            weight = graph.weight(vertex)
            self.servers[server].store.create_node(vertex, weight=weight)
            self.catalog.register(vertex, server)
            self.graph.add_vertex(vertex, weight=weight)
            self.aux.add_vertex(vertex, server, weight)
        for u, v in graph.edges():
            self._create_edge_records(u, v, properties=None)
            self.graph.add_edge(u, v)
            self.aux.add_edge(u, v)

    def _create_edge_records(
        self, u: int, v: int, properties: Optional[Dict[str, Any]]
    ) -> float:
        """Primary record on the src (u) host, ghost on the dst host.

        Under fault injection the write is transactional: a crashed
        primary host rejects the whole insert up front, and a ghost
        shipment that fails deletes the already-created primary record
        before re-raising — a half-written edge must never survive.
        """
        host_u = self.catalog.lookup(u)
        host_v = self.catalog.lookup(v)
        if self.faults is not None:
            self.faults.check_server(
                host_u, cost=self.network.config.fault_timeout_cost
            )
        rel_id = self.servers[host_u].store.allocate_rel_id()
        cost = self.network.local_visit()
        self.servers[host_u].store.create_relationship(
            rel_id, u, v, properties=properties
        )
        if host_v != host_u:
            try:
                cost += self.network.remote_hop(host_u, host_v)
            except FaultInjectedError as exc:
                self.servers[host_u].store.delete_relationship(rel_id)
                exc.cost += cost
                raise
            self.servers[host_v].store.create_relationship(rel_id, u, v, ghost=True)
        # Double-write window: an endpoint mid-copy in an online
        # migration also receives the record on its target server, after
        # every fault point — a failed write must not leave mirror state.
        # No-op (empty window) outside an online migration.
        if self._executor.window_open:
            rel = {"rel_id": rel_id, "src": u, "dst": v, "properties": properties or {}}
            for endpoint in (u, v):
                self._executor.mirror_edge(endpoint, rel)
        return cost

    # ==================================================================
    # Read path
    # ==================================================================
    def traverse(self, start: int, hops: int = 1) -> TraversalResult:
        """Distributed k-hop traversal; updates popularity weights."""
        result = self._engine.traverse(start, hops)
        self._advance(result.cost)
        if self.track_weights:
            for vertex in result.response:
                self.graph.add_weight(vertex, 1.0)
                self.aux.add_weight(vertex, 1.0)
        return result

    def read_vertex(self, vertex: int) -> Tuple[Dict[str, Any], float]:
        """Single-record query; returns (properties, simulated cost).

        If the hosting server is inside a crash window the dispatch times
        out and the client gets a degraded (empty) result — the same
        contract a traversal honors when its home server is down, instead
        of reads silently succeeding against a crashed server.
        """
        server = self.catalog.lookup(vertex)
        if self.faults is not None and self.faults.is_down(server):
            cost = (
                self.network.config.client_dispatch_cost
                + self.network.config.fault_timeout_cost
            )
            self.telemetry.counter(
                "reads_degraded_total",
                "single-record reads that timed out against a crashed server",
            ).inc()
            self._advance(cost)
            return {}, cost
        properties = self.servers[server].read_vertex(vertex)
        self.servers[server].busy_seconds += self.network.local_visit()
        cost = self.network.config.client_dispatch_cost + self.network.local_visit()
        self._advance(cost)
        if self.track_weights:
            self.graph.add_weight(vertex, 1.0)
            self.aux.add_weight(vertex, 1.0)
        return properties, cost

    # ==================================================================
    # Write path
    # ==================================================================
    def add_vertex(
        self,
        vertex: int,
        weight: float = 1.0,
        properties: Optional[Dict[str, Any]] = None,
        server: Optional[int] = None,
    ) -> float:
        """Insert a new user; placed by hash unless ``server`` is given."""
        if vertex in self.catalog:
            raise ClusterError(f"vertex {vertex} already exists")
        target = server if server is not None else self.placement_target(vertex)
        if self.faults is not None and self.faults.is_down(target):
            # The insert times out against the crashed placement target;
            # no layer has been touched, so the failure is clean.
            cost = (
                self.network.config.client_dispatch_cost
                + self.network.config.fault_timeout_cost
            )
            self._count_degraded_write()
            self._advance(cost)
            raise ServerDownError(target, cost=cost)
        self.servers[target].create_vertex(vertex, weight=weight, properties=properties)
        self.catalog.register(vertex, target)
        self.graph.add_vertex(vertex, weight=weight)
        self.aux.add_vertex(vertex, target, weight)
        cost = self.network.config.client_dispatch_cost + self.network.local_visit()
        self._advance(cost)
        return cost

    def add_edge(
        self, u: int, v: int, properties: Optional[Dict[str, Any]] = None
    ) -> float:
        """Connect two users (updates stores, mirror and auxiliary data).

        With faults attached the write can fail (crashed host, lost ghost
        shipment); the store mutation is rolled back before the error
        propagates, so the mirror, auxiliary data and stores stay in
        agreement — the wasted timeout is still simulated time.
        """
        if self.graph.has_edge(u, v):
            raise ClusterError(f"edge ({u}, {v}) already exists")
        cost = self.network.config.client_dispatch_cost
        try:
            cost += self._create_edge_records(u, v, properties)
        except FaultInjectedError as exc:
            cost += exc.cost
            self._count_degraded_write()
            self._advance(cost)
            raise
        self.graph.add_edge(u, v)
        self.aux.add_edge(u, v)
        self._advance(cost)
        return cost

    def _count_degraded_write(self) -> None:
        self.telemetry.counter(
            "writes_degraded_total",
            "write operations that failed against an injected fault",
        ).inc()

    # ==================================================================
    # Repartitioning
    # ==================================================================
    def check_trigger(self) -> TriggerDecision:
        """Would the repartitioner fire right now?"""
        return self.trigger.check(self.aux)

    def rebalance(
        self, force: bool = False
    ) -> Optional[Tuple[RepartitionResult, MigrationReport]]:
        """Run the lightweight repartitioner end to end.

        Phase 1 (logical, auxiliary-data only) computes the moves; phase 2
        physically migrates records with the copy/remove protocol.  Returns
        None when the trigger does not fire (and ``force`` is False).
        """
        decision = self.check_trigger()
        if not decision.should_repartition and not force:
            return None
        span = self.telemetry.span("rebalance", forced=force)
        scratch = self.catalog.snapshot()
        if (
            self.workload_model is not None
            and self.repartitioner_config.workload_alpha > 0.0
        ):
            # Close the telemetry loop: refresh the auxiliary data's heat
            # overlay from the observed traffic before selecting moves.
            self.aux.attach_heat(self.workload_model.normalized_edge_heat())
        repartitioner = LightweightRepartitioner(self.repartitioner_config)
        result = repartitioner.run(
            self.graph, scratch, aux=self.aux, telemetry=self.telemetry
        )
        try:
            report = self._apply_moves(result.moves)
        except MigrationAbortedError as exc:
            # Phase 1 already retargeted the auxiliary data; the physical
            # migration rolled itself back, so undo the logical moves too
            # and the cluster is exactly where it was before the attempt.
            self._rollback_aux(result.moves)
            self.telemetry.counter(
                "rebalance_aborts_total",
                "rebalance runs aborted by injected faults",
            ).inc()
            self.telemetry.event(
                "rebalance_aborted",
                forced=force,
                vertices_moved=result.vertices_moved,
                error=str(exc.cause),
            )
            span.set_attribute("aborted", True)
            span.finish(duration=exc.report.total_cost)
            raise
        self.telemetry.counter(
            "rebalances_total", "repartitioner end-to-end runs"
        ).inc()
        self.telemetry.event(
            "rebalance",
            forced=force,
            iterations=result.iterations,
            vertices_moved=result.vertices_moved,
            initial_edge_cut=result.initial_edge_cut,
            final_edge_cut=result.final_edge_cut,
            final_imbalance=result.final_imbalance,
            migration_cost=report.total_cost,
        )
        span.set_attribute("vertices_moved", result.vertices_moved)
        span.finish(duration=report.total_cost)
        return result, report

    def rebalance_steps(self, force: bool = False):
        """Online rebalance: generator variant of :meth:`rebalance`.

        Phase 1 runs exactly as in the serial path (the plan is computed
        against the cluster state at call time), then phase 2 streams
        :class:`~repro.cluster.migration_executor.MigrationStep` events —
        one per copied vertex, the barrier, one per removed source copy —
        so the concurrent engine interleaves queries and writes with the
        physical migration.  Copied vertices sit in a double-write window
        until the atomic catalog commit; an abort rolls back copy-steps
        and mirrored writes together and re-points the auxiliary data,
        exactly as the serial path does.  Because the plan is fixed up
        front and commit is atomic, the final placement (and therefore
        the edge-cut) equals what :meth:`rebalance` produces from the
        same start state.  Yields nothing when the trigger does not fire
        and ``force`` is False; the generator's return value is
        ``(RepartitionResult, MigrationReport)`` or ``None``.
        """
        decision = self.check_trigger()
        if not decision.should_repartition and not force:
            return None
        span = self.telemetry.span("rebalance", forced=force, online=True)
        scratch = self.catalog.snapshot()
        if (
            self.workload_model is not None
            and self.repartitioner_config.workload_alpha > 0.0
        ):
            self.aux.attach_heat(self.workload_model.normalized_edge_heat())
        repartitioner = LightweightRepartitioner(self.repartitioner_config)
        result = repartitioner.run(
            self.graph, scratch, aux=self.aux, telemetry=self.telemetry
        )
        plan = build_migration_plan(result.moves)
        steps = self._executor.migrate_steps(plan)
        advanced = 0.0
        report: Optional[MigrationReport] = None
        try:
            while True:
                try:
                    step: MigrationStep = next(steps)
                except StopIteration as stop:
                    report = stop.value
                    break
                self._advance(step.cost)
                advanced += step.cost
                yield step
        except MigrationAbortedError as exc:
            self._rollback_aux(result.moves)
            # Per-step costs were folded into the clock as they ran; the
            # abort's wasted timeout/backoff is the only remainder.
            self._advance(max(0.0, exc.report.total_cost - advanced))
            self.telemetry.counter(
                "rebalance_aborts_total",
                "rebalance runs aborted by injected faults",
            ).inc()
            self.telemetry.event(
                "rebalance_aborted",
                forced=force,
                vertices_moved=result.vertices_moved,
                error=str(exc.cause),
            )
            span.set_attribute("aborted", True)
            span.finish(duration=exc.report.total_cost)
            raise
        self.telemetry.counter(
            "rebalances_total", "repartitioner end-to-end runs"
        ).inc()
        self.telemetry.event(
            "rebalance",
            forced=force,
            iterations=result.iterations,
            vertices_moved=result.vertices_moved,
            initial_edge_cut=result.initial_edge_cut,
            final_edge_cut=result.final_edge_cut,
            final_imbalance=result.final_imbalance,
            migration_cost=report.total_cost,
        )
        span.set_attribute("vertices_moved", result.vertices_moved)
        span.finish(duration=report.total_cost)
        return result, report

    def decay_weights(self, factor: float = 0.5, floor: float = 1.0) -> None:
        """Age popularity weights so rebalancing tracks current traffic."""
        self.aux.decay_weights(factor, floor=floor)
        for vertex in self.graph.vertices():
            self.graph.set_weight(vertex, self.aux.weight_of(vertex))

    def repartition_static(self, partitioner: Partitioner) -> MigrationReport:
        """Re-run a static partitioner (e.g. the METIS substitute) and
        migrate the difference — the paper's comparison point that needs a
        global view of the graph."""
        new_partitioning = partitioner.partition(self.graph, self.num_servers)
        moves = {}
        for vertex in self.graph.vertices():
            source = self.catalog.lookup(vertex)
            target = new_partitioning.partition_of(vertex)
            if source != target:
                moves[vertex] = (source, target)
        # Keep auxiliary data in sync with the new placement.
        for vertex, (_, target) in moves.items():
            self.aux.apply_move(vertex, target, self.graph.neighbors(vertex))
        try:
            return self._apply_moves(moves)
        except MigrationAbortedError:
            self._rollback_aux(moves)
            raise

    def _rollback_aux(self, moves: Dict[int, Tuple[int, int]]) -> None:
        """Re-point the auxiliary data at the pre-move placement."""
        for vertex, (source, _) in moves.items():
            self.aux.apply_move(vertex, source, self.graph.neighbors(vertex))

    def _apply_moves(self, moves: Dict[int, Tuple[int, int]]) -> MigrationReport:
        plan = build_migration_plan(moves)
        try:
            report = self._executor.execute(plan)
        except MigrationAbortedError as exc:
            # The wasted copy/rollback work still consumed simulated time.
            self._advance(exc.report.total_cost)
            raise
        self._advance(report.total_cost)
        return report

    # ==================================================================
    # Elastic membership (join / drain / crash-recover)
    # ==================================================================
    def active_servers(self) -> List[int]:
        """Ids of servers currently schedulable as placement targets."""
        return [
            server.server_id
            for server in self.servers
            if server.state == server_states.ACTIVE
        ]

    def placement_target(self, vertex: int) -> int:
        """Hash placement over the *active* membership.

        With every server active this is exactly the historical
        ``place(vertex, num_servers)`` — the active list is then the
        identity mapping — so pre-elasticity schedules are unchanged.
        """
        active = self.active_servers()
        if not active:
            raise ClusterError("no active servers to place on")
        return active[self._placer.place(vertex, len(active))]

    def _member(self, server_id: int) -> HermesServer:
        """The addressed member, or ClusterError for an id never joined
        (membership steps against unknown servers degrade, not crash)."""
        if not 0 <= server_id < self.num_servers:
            raise ClusterError(f"unknown server {server_id}")
        return self.servers[server_id]

    def set_server_capacity(self, server_id: int, capacity: float) -> None:
        """Change one server's relative capacity (weighted balance)."""
        self._member(server_id).capacity = capacity
        self.aux.set_capacity(server_id, capacity)

    def add_server(
        self, capacity: float = 1.0, reshard: bool = True
    ) -> Tuple[int, Optional[Tuple[RepartitionResult, MigrationReport]]]:
        """Join one server: register everywhere, then scale-out reshard.

        Registration order matters: the id-generation rebase must use a
        floor computed *before* any layer could mint ids under the new
        stripe count.  With ``reshard`` the join ends with a forced
        capacity-weighted rebalance that moves load onto the (initially
        empty) newcomer; an aborted reshard leaves a consistent cluster
        with an empty-but-ACTIVE new server.
        """
        span = self.telemetry.span("add_server")
        new_id = self.num_servers
        new_total = self.num_servers + 1
        # Every existing allocator's next id, before anything changes:
        # rebasing all stripes above this floor makes future ids collision
        # free against both history and each other.
        floor = max(server.store.next_id_bound() for server in self.servers)
        server = HermesServer(
            new_id,
            new_total,
            clock=lambda: self.now,
            lock_timeout=self._lock_timeout,
            telemetry=self.telemetry,
            labels={"cluster": self.cluster_id},
        )
        server.state = server_states.JOINING
        server.capacity = capacity
        if self.faults is not None:
            server.attach_faults(self.faults)
        self.servers.append(server)
        self.num_servers = new_total
        self.network.add_server()
        self.catalog.add_server()
        self.location_cache.add_server()
        self.aux.add_partition(capacity)
        for member in self.servers:
            member.store.rebase_ids(new_total, floor)
            journal = self.journals.get(member.server_id)
            if journal is not None:
                journal.note_meta()
        if self.durability:
            journal = ServerJournal()
            journal.attach(server.store)
            self.journals[new_id] = journal
        # Grow whatever traffic surfaces are attached to this cluster.
        serving = getattr(self, "serving", None)
        if serving is not None:
            serving.queue.add_server()
            serving.note_topology_change()
        engine = getattr(self, "_concurrent_engine", None)
        if engine is not None:
            engine.scheduler.add_server()
        server.state = server_states.ACTIVE
        self.telemetry.event("server_joined", server=new_id, capacity=capacity)
        span.set_attribute("server", new_id)
        result: Optional[Tuple[RepartitionResult, MigrationReport]] = None
        try:
            if reshard:
                result = self.rebalance(force=True)
        finally:
            span.finish()
        return new_id, result

    def _drain_plan(self, server_id: int) -> Dict[int, Tuple[int, int]]:
        """Deterministic evacuation plan for one server's primaries.

        Each vertex goes to the ACTIVE candidate holding most of its
        neighbors (minimizing new edge-cut); ties break toward the least
        projected load relative to capacity, then the lowest id.  Running
        weights make the plan spread load instead of dogpiling one host.
        """
        candidates = [
            other.server_id
            for other in self.servers
            if other.state == server_states.ACTIVE and other.server_id != server_id
        ]
        if not candidates:
            raise ClusterError("cannot drain the only active server")
        weights = list(self.aux.partition_weights)
        moves: Dict[int, Tuple[int, int]] = {}
        for vertex in sorted(self.catalog.vertices_on(server_id)):
            counts = self.aux.neighbor_counts(vertex)
            vertex_weight = self.aux.weight_of(vertex)

            def rank(candidate: int) -> Tuple[float, float, int]:
                capacity = max(self.servers[candidate].capacity, 1e-12)
                projected = (weights[candidate] + vertex_weight) / capacity
                return (-counts.get(candidate, 0), projected, candidate)

            target = min(candidates, key=rank)
            weights[target] += vertex_weight
            moves[vertex] = (server_id, target)
        return moves

    def drain_server(self, server_id: int) -> Optional[MigrationReport]:
        """Graceful leave: unschedulable, evacuate primaries, detach.

        The drained server keeps its id (the server list never shrinks)
        but ends DETACHED with zero primaries, zero capacity and no
        location-cache entry pointing at it.  An aborted evacuation rolls
        everything back and the server returns to ACTIVE.
        """
        server = self._member(server_id)
        if server.state != server_states.ACTIVE:
            raise ClusterError(
                f"server {server_id} is {server.state}; only ACTIVE servers drain"
            )
        span = self.telemetry.span("drain_server", server=server_id)
        old_capacity = server.capacity
        server.state = server_states.DRAINING
        server.capacity = 0.0
        self.aux.set_capacity(server_id, 0.0)
        moves = self._drain_plan(server_id)
        for vertex, (_, target) in moves.items():
            self.aux.apply_move(vertex, target, self.graph.neighbors(vertex))
        report: Optional[MigrationReport] = None
        try:
            if moves:
                report = self._apply_moves(moves)
        except MigrationAbortedError:
            self._rollback_aux(moves)
            self.aux.set_capacity(server_id, old_capacity)
            server.capacity = old_capacity
            server.state = server_states.ACTIVE
            span.set_attribute("aborted", True)
            span.finish()
            raise
        self.location_cache.purge_host(server_id)
        server.state = server_states.DETACHED
        serving = getattr(self, "serving", None)
        if serving is not None:
            serving.note_topology_change()
        self.telemetry.event(
            "server_drained", server=server_id, vertices_moved=len(moves)
        )
        span.set_attribute("vertices_moved", len(moves))
        span.finish()
        return report

    def _require_journal(self, server_id: int) -> ServerJournal:
        journal = self.journals.get(server_id)
        if journal is None:
            raise ClusterError(
                f"server {server_id} has no durability journal "
                "(build the cluster with durability=True)"
            )
        return journal

    def crash_server(self, server_id: int, keep_unflushed_bytes: int = 0):
        """Crash episode: lose the page cache + unflushed WAL tail and
        replay the durable log.  The server is CRASHED (unreadable) until
        :meth:`recover_server` rebuilds its store."""
        server = self._member(server_id)
        if server.state != server_states.ACTIVE:
            raise ClusterError(
                f"server {server_id} is {server.state}; only ACTIVE servers crash"
            )
        journal = self._require_journal(server_id)
        report = journal.crash(keep_unflushed_bytes)
        server.state = server_states.CRASHED
        self.telemetry.event(
            "server_crashed",
            server=server_id,
            rolled_back_txns=len(report.rolled_back_txns),
        )
        return report

    def recover_server(self, server_id: int) -> Dict[str, Any]:
        """Replay the WAL into a fresh GraphStore and re-validate.

        The recovered store must agree with the catalog on exactly which
        vertices this server serves; the (pre-crash durable, post-rebuild)
        snapshot pair is appended to :attr:`recovery_log` for the
        recovery-fidelity invariant to audit.
        """
        server = self._member(server_id)
        if server.state != server_states.CRASHED:
            raise ClusterError(
                f"server {server_id} is {server.state}; nothing to recover"
            )
        journal = self._require_journal(server_id)
        server.state = server_states.RECOVERING
        pre = journal.snapshot()
        store = journal.rebuild(server_id)
        server.store = store
        journal.attach(store)
        post = logical_store_snapshot(store)
        available, _ = store.membership()
        expected = frozenset(self.catalog.vertices_on(server_id))
        if available != expected:
            raise ClusterError(
                f"recovered server {server_id} serves {len(available)} vertices; "
                f"catalog expects {len(expected)}"
            )
        episode = {"server": server_id, "pre": pre, "post": post}
        self.recovery_log.append(episode)
        server.state = server_states.ACTIVE
        self.telemetry.event(
            "server_recovered",
            server=server_id,
            nodes=len(post["nodes"]),
            rels=len(post["rels"]),
        )
        return episode

    def crash_recover_server(
        self, server_id: int, keep_unflushed_bytes: int = 0
    ) -> Dict[str, Any]:
        """One whole crash-recovery episode (the simtest step kind)."""
        self.crash_server(server_id, keep_unflushed_bytes)
        return self.recover_server(server_id)

    # ==================================================================
    # Whole-cluster persistence
    # ==================================================================
    _META_FILE = "cluster.json"

    def save(self, directory: str) -> None:
        """Persist every server's stores; catalog/mirror/aux are derived
        state and are reconstructed on load from the stores themselves."""
        os.makedirs(directory, exist_ok=True)
        for server in self.servers:
            server.store.save(os.path.join(directory, f"server-{server.server_id}"))
        meta = {"num_servers": self.num_servers}
        with open(os.path.join(directory, self._META_FILE), "w") as handle:
            json.dump(meta, handle)

    @classmethod
    def load_cluster(cls, directory: str, **kwargs) -> "HermesCluster":
        """Reopen a saved cluster.

        The stores are the source of truth: vertex placement comes from
        which store holds each (available) node, the logical mirror from
        the union of non-ghost relationship records, vertex weights from
        the node records, and the auxiliary data is bootstrapped from the
        reconstructed mirror + placement.
        """
        with open(os.path.join(directory, cls._META_FILE)) as handle:
            meta = json.load(handle)
        cluster = cls(meta["num_servers"], **kwargs)
        for server in cluster.servers:
            server.store = GraphStore.load(
                os.path.join(directory, f"server-{server.server_id}")
            )
        for server in cluster.servers:
            for node_id in server.store.node_ids():
                if not server.store.is_available(node_id):
                    continue
                cluster.catalog.register(node_id, server.server_id)
                cluster.graph.add_vertex(
                    node_id, weight=server.store.node_weight(node_id)
                )
                cluster.aux.add_vertex(
                    node_id, server.server_id, server.store.node_weight(node_id)
                )
        seen = set()
        for server in cluster.servers:
            for record in server.store.relationships.records():
                if record.ghost or record.rel_id in seen:
                    continue
                seen.add(record.rel_id)
                cluster.graph.add_edge(record.src, record.dst)
                cluster.aux.add_edge(record.src, record.dst)
        return cluster

    # ==================================================================
    # Metrics / introspection
    # ==================================================================
    def edge_cut(self) -> int:
        return self.aux.edge_cut()

    def edge_cut_fraction(self) -> float:
        if self.graph.num_edges == 0:
            return 0.0
        return self.aux.edge_cut() / self.graph.num_edges

    def imbalance(self) -> float:
        return self.aux.max_imbalance()

    def boundary_sizes(self) -> List[int]:
        """Per-server count of vertices with cross-server neighbors — the
        working-set size of the next phase-1 selection scan."""
        return self.aux.boundary_sizes()

    def partitioning(self) -> Partitioning:
        return self.catalog.snapshot()

    def membership(self) -> List[Tuple[frozenset, frozenset]]:
        """Per-server ``(available, unavailable)`` store membership.

        The storage-side view of vertex placement, enumerated straight
        from the node stores — the simtest auditor diffs this against the
        catalog to catch placement drift.
        """
        return [server.store.membership() for server in self.servers]

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def start_tracing(self) -> None:
        """Turn span/event capture on for this cluster's hub."""
        self.telemetry.start_recording()

    def export_telemetry(
        self, path: str, meta: Optional[Dict[str, Any]] = None
    ) -> int:
        """Dump the full telemetry state (metrics, spans, events) as JSONL.

        Per-link traffic gauges are materialized from the network stats
        right before the snapshot so the log carries them.  Returns the
        number of lines written.
        """
        self.network.export_link_metrics()
        header: Dict[str, Any] = {
            "system": "hermes-repro",
            "num_servers": self.num_servers,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "simulated_now": self.now,
        }
        if meta:
            header.update(meta)
        return export_jsonl(self.telemetry, path, meta=header)

    def telemetry_summary(self, top: int = 10) -> str:
        """Human-readable digest of metrics, hot links, and spans."""
        return summary_text(self.telemetry, self.network.stats, top=top)

    def storage_stats(self) -> List:
        return [server.store.stats() for server in self.servers]

    def validate(self) -> None:
        """Full cross-layer consistency check (used by integration tests).

        Verifies catalog == auxiliary placement, store hosting, ghost
        conventions and auxiliary counters against the mirror graph.
        """
        for vertex in self.graph.vertices():
            home = self.catalog.lookup(vertex)
            if self.aux.partition_of(vertex) != home:
                raise ClusterError(f"aux/catalog disagree on vertex {vertex}")
            if not self.servers[home].store.is_available(vertex):
                raise ClusterError(f"vertex {vertex} not available on server {home}")
            for other in range(self.num_servers):
                if other != home and self.servers[other].store.has_node(vertex):
                    raise ClusterError(
                        f"vertex {vertex} has a stray replica on server {other}"
                    )
            # Auxiliary neighbor counters must match the mirror adjacency.
            expected: Dict[int, int] = {}
            for neighbor in self.graph.neighbors(vertex):
                part = self.catalog.lookup(neighbor)
                expected[part] = expected.get(part, 0) + 1
            if dict(self.aux.neighbor_counts(vertex)) != expected:
                raise ClusterError(f"aux counters wrong for vertex {vertex}")
            # The hosting server's adjacency must equal the mirror's.
            local = sorted(self.servers[home].store.neighbors(vertex))
            if local != sorted(self.graph.neighbors(vertex)):
                raise ClusterError(f"store adjacency wrong for vertex {vertex}")
        for u, v in self.graph.edges():
            self._validate_edge(u, v)

    def _validate_edge(self, u: int, v: int) -> None:
        host_u = self.catalog.lookup(u)
        host_v = self.catalog.lookup(v)
        rel_u = self._find_rel(host_u, u, v)
        if rel_u is None:
            raise ClusterError(f"edge ({u}, {v}) missing on server {host_u}")
        if host_u == host_v:
            record = self.servers[host_u].store.relationship(rel_u)
            if record.ghost:
                raise ClusterError(f"local edge ({u}, {v}) is marked ghost")
            return
        rel_v = self._find_rel(host_v, v, u)
        if rel_v is None:
            raise ClusterError(f"edge ({u}, {v}) missing on server {host_v}")
        if rel_u != rel_v:
            raise ClusterError(f"edge ({u}, {v}) has mismatched record IDs")
        record_u = self.servers[host_u].store.relationship(rel_u)
        record_v = self.servers[host_v].store.relationship(rel_v)
        src_host = self.catalog.lookup(record_u.src)
        for host, record in ((host_u, record_u), (host_v, record_v)):
            expected_ghost = host != src_host
            if record.ghost != expected_ghost:
                raise ClusterError(
                    f"edge ({u}, {v}) ghost flag wrong on server {host}"
                )

    def _find_rel(self, host: int, node: int, other: int) -> Optional[int]:
        store = self.servers[host].store
        for entry in store.neighbor_entries(node, include_unavailable=True):
            if entry.neighbor == other:
                return entry.rel_id
        return None

    def __repr__(self) -> str:
        return (
            f"HermesCluster(servers={self.num_servers}, "
            f"vertices={self.graph.num_vertices}, edges={self.graph.num_edges}, "
            f"edge_cut={self.edge_cut()}, imbalance={self.imbalance():.3f})"
        )

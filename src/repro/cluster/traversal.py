"""Distributed k-hop traversal execution (paper Sections 4 and 5.1).

"To submit a query the client would first lookup the vertex for the
starting point of the query, then send the traversal query to the server
hosting the initial vertex. ... If the information is not local to the
server, remote traversals are executed using the links between servers."

The engine expands the traversal frontier hop by hop.  Every expanded
vertex is a *processed* visit (the paper's throughput unit); expanding a
vertex hosted on a different server than the one currently executing the
step costs a remote hop.  2-hop traversals re-process vertices reachable
along multiple paths — only distinct vertices enter the response, which
is why the paper's response/processed ratio drops to ~0.39/0.28 for
2-hop queries (Section 5.3.2).

With a recording telemetry hub each query produces a ``traversal`` span
with one ``hop`` child span per frontier depth (sized by the simulated
cost that depth charged), plus aggregate counters and a per-query cost
histogram; with the default null hub the same calls are no-ops.

Under fault injection (a :class:`~repro.cluster.faults.FaultPlan`
attached to the network) the engine degrades gracefully instead of
raising: a remote hop that still fails after bounded retries marks the
destination server as a *failed partition* for the rest of the query,
the frontier entries hosted there are skipped, and the result carries
the servers it could not reach in ``failed_partitions`` — a partial
response, exactly what a production client would get from a cluster
with a crashed replica-less server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.cluster.catalog import Catalog
from repro.cluster.faults import RetryPolicy
from repro.cluster.network import SimulatedNetwork
from repro.cluster.server import HermesServer
from repro.exceptions import FaultInjectedError, ServerDownError
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class TraversalResult:
    """Outcome and cost accounting of one traversal query."""

    start: int
    hops: int
    #: vertices in the response (distinct, excluding unavailable ones)
    response: Tuple[int, ...]
    #: total vertices processed, counting repeats along multiple paths
    processed: int
    #: traversal steps that crossed servers
    remote_hops: int
    #: simulated execution time of the query
    cost: float
    #: servers that could not be reached; when non-empty the response is
    #: partial (their vertices are missing, not absent from the graph)
    failed_partitions: Tuple[int, ...] = ()

    @property
    def partial(self) -> bool:
        return bool(self.failed_partitions)

    @property
    def response_processed_ratio(self) -> float:
        if self.processed == 0:
            return 0.0
        return len(self.response) / self.processed


class TraversalEngine:
    """Executes k-hop traversals over the servers through the catalog."""

    def __init__(
        self,
        servers: List[HermesServer],
        catalog: Catalog,
        network: SimulatedNetwork,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.servers = servers
        self.catalog = catalog
        self.network = network
        self.retry = retry or RetryPolicy()
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._traversals = telemetry.counter(
            "traversals_total", "traversal queries executed"
        )
        self._processed = telemetry.counter(
            "traversal_processed_total", "vertices processed across traversals"
        )
        self._remote = telemetry.counter(
            "traversal_remote_hops_total", "traversal steps that crossed servers"
        )
        self._cost_hist = telemetry.histogram(
            "traversal_cost_seconds", "simulated execution time of one traversal"
        )

    def traverse(self, start: int, hops: int) -> TraversalResult:
        """Run a ``hops``-hop traversal from ``start``.

        The query is dispatched to the server hosting ``start``; each
        frontier vertex is expanded on its hosting server, and stepping to
        a vertex hosted elsewhere is charged as a remote traversal.
        """
        cost = self.network.config.client_dispatch_cost
        home = self.catalog.lookup(start)
        remote_service = self.network.config.remote_service_cost
        local_visit = self.network.local_visit()
        injector = self.network.fault_injector
        #: servers this query gave up on (down or unreachable after retries)
        failed: Set[int] = set()

        if injector is not None and injector.is_down(home):
            # The dispatch to the home server times out: the client gets
            # an empty partial result rather than an exception.
            return self._degraded_dispatch(start, hops, home, cost)

        span = self.telemetry.span("traversal", start=start, hops=hops)
        # Client dispatch happens before the first hop: push the causal
        # cursor so depth spans line up after it.
        span.advance(cost)
        processed = 0
        remote = 0
        response: Set[int] = set()

        # Frontier entries are (vertex, host, discovered_from_host): when
        # the traversal follows an edge whose endpoints live on different
        # servers, that step is a remote traversal — the per-cut-edge cost
        # that makes edge-cut the dominant performance factor (Section 1).
        frontier: List[Tuple[int, int, int]] = [(start, home, home)]
        visited_for_expansion: Set[int] = set()

        for depth in range(hops + 1):
            # Keep multiplicity: a vertex reachable along several paths is
            # processed once per path (the paper's 2-hop ratio effect), but
            # expanded only once (visited_for_expansion) so work stays
            # polynomial.
            depth_span = self.telemetry.span(
                "hop", depth=depth, frontier=len(frontier)
            )
            cost_before = cost
            next_frontier: List[Tuple[int, int, int]] = []
            for vertex, host, from_host in frontier:
                if host != from_host:
                    if host in failed:
                        # Already unreachable this query: don't retry on
                        # every frontier entry, just degrade.
                        continue
                    try:
                        cost += self._hop(from_host, host)
                    except FaultInjectedError as exc:
                        cost += exc.cost
                        failed.add(host)
                        continue
                    remote += 1
                    # Servicing the hop consumes CPU on both endpoints --
                    # the "network IO" load that edge-cuts impose.
                    self.servers[from_host].busy_counter.inc(remote_service)
                    self.servers[host].busy_counter.inc(remote_service)
                    cost += remote_service
                executing = self.servers[host]
                if not executing.store.is_available(vertex):
                    # Unavailable (mid-migration) or missing: treated as
                    # absent from the local vertex set (Section 3.2).
                    continue
                processed += 1
                executing.visits_counter.inc()
                executing.busy_counter.inc(local_visit)
                cost += local_visit
                response.add(vertex)
                if depth == hops:
                    continue
                if vertex in visited_for_expansion:
                    continue
                visited_for_expansion.add(vertex)
                try:
                    entries = executing.expand(vertex)
                except ServerDownError:
                    # The host crashed mid-query (a window opened while
                    # this frontier was in flight): its vertices stay in
                    # the response, its expansions are lost.
                    failed.add(host)
                    continue
                for entry in entries:
                    neighbor_host = self.catalog.lookup(entry.neighbor)
                    next_frontier.append((entry.neighbor, neighbor_host, host))
            depth_span.finish(duration=cost - cost_before)
            if not next_frontier:
                break
            frontier = next_frontier

        self._traversals.inc()
        self._processed.inc(processed)
        self._remote.inc(remote)
        self._cost_hist.observe(cost)
        span.set_attribute("processed", processed)
        span.set_attribute("remote_hops", remote)
        span.set_attribute("response", len(response))
        if failed:
            self.telemetry.counter(
                "traversals_partial_total",
                "traversals that returned partial results",
            ).inc()
            span.set_attribute("failed_partitions", sorted(failed))
        span.finish(duration=cost)

        return TraversalResult(
            start=start,
            hops=hops,
            response=tuple(sorted(response)),
            processed=processed,
            remote_hops=remote,
            cost=cost,
            failed_partitions=tuple(sorted(failed)),
        )

    # ------------------------------------------------------------------
    # Fault-degradation helpers
    # ------------------------------------------------------------------
    def _hop(self, src: int, dst: int) -> float:
        """One remote hop, retried under the engine's policy on faults.

        Returns the total simulated cost including wasted attempts; the
        zero-fault path is a single direct call with no extra work.
        """
        if self.network.fault_injector is None:
            return self.network.remote_hop(src, dst)
        cost, wasted = self.retry.call(
            lambda: self.network.remote_hop(src, dst),
            injector=self.network.fault_injector,
            on_retry=self._on_retry,
        )
        return cost + wasted

    def _on_retry(self, exc: FaultInjectedError, pause: float) -> None:
        self.telemetry.counter(
            "traversal_retries_total", "traversal hop retries after faults"
        ).inc()

    def _degraded_dispatch(
        self, start: int, hops: int, home: int, cost: float
    ) -> TraversalResult:
        """Empty partial result when the home server is down at dispatch."""
        cost += self.network.config.fault_timeout_cost
        span = self.telemetry.span("traversal", start=start, hops=hops)
        self._traversals.inc()
        self.telemetry.counter(
            "traversals_partial_total",
            "traversals that returned partial results",
        ).inc()
        self._cost_hist.observe(cost)
        span.set_attribute("processed", 0)
        span.set_attribute("remote_hops", 0)
        span.set_attribute("response", 0)
        span.set_attribute("failed_partitions", [home])
        span.finish(duration=cost)
        return TraversalResult(
            start=start,
            hops=hops,
            response=(),
            processed=0,
            remote_hops=0,
            cost=cost,
            failed_partitions=(home,),
        )

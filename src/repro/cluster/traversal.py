"""Distributed k-hop traversal execution (paper Sections 4 and 5.1).

"To submit a query the client would first lookup the vertex for the
starting point of the query, then send the traversal query to the server
hosting the initial vertex. ... If the information is not local to the
server, remote traversals are executed using the links between servers."

The engine expands the traversal frontier hop by hop.  Every expanded
vertex is a *processed* visit (the paper's throughput unit); expanding a
vertex hosted on a different server than the one currently executing the
step costs a remote traversal.  2-hop traversals re-process vertices
reachable along multiple paths — only distinct vertices enter the
response, which is why the paper's response/processed ratio drops to
~0.39/0.28 for 2-hop queries (Section 5.3.2).

Remote traversal work is **batched**: at each depth the frontier entries
bound for one server are aggregated into a single request per
``(src, dst)`` link — one ``remote_hop_cost`` round trip plus a small
per-entry marginal cost, the way a production driver amortizes cut edges
(and the traversal-locality lever TAPER and the Neo4j partitioning
evaluations optimize for).  Vertex locations come from a per-server
:class:`~repro.cluster.catalog.LocationCache` instead of a catalog call
per step; a stale entry (the vertex migrated and this server was not a
migration participant) resolves via a forwarding hop charged to the
query, after which the cache entry is corrected.  Setting
``NetworkConfig.batch_remote_hops=False`` restores the legacy
one-message-per-entry cost model byte for byte.

With a recording telemetry hub each query produces a ``traversal`` span
with one ``hop`` child span per frontier depth (sized by the simulated
cost that depth charged), plus aggregate counters and a per-query cost
histogram; with the default null hub the same calls are no-ops.

Under fault injection (a :class:`~repro.cluster.faults.FaultPlan`
attached to the network) the engine degrades gracefully instead of
raising: a remote message that still fails after bounded retries marks
the destination server as a *failed partition* for the rest of the
query, every frontier entry hosted there — remote *and* same-host — is
skipped, and the result carries the servers it could not reach in
``failed_partitions`` — a partial response, exactly what a production
client would get from a cluster with a crashed replica-less server.
In batched mode retries and timeouts apply once per aggregated message,
not once per frontier entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.cluster.catalog import Catalog, LocationCache
from repro.cluster.faults import RetryPolicy
from repro.cluster.network import SimulatedNetwork
from repro.cluster.server import HermesServer
from repro.exceptions import CatalogError, FaultInjectedError, ServerDownError
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class TraversalResult:
    """Outcome and cost accounting of one traversal query."""

    start: int
    hops: int
    #: vertices in the response (distinct, excluding unavailable ones)
    response: Tuple[int, ...]
    #: total vertices processed, counting repeats along multiple paths
    processed: int
    #: traversal steps that crossed servers (frontier entries, not
    #: messages — batching changes the message count, not this)
    remote_hops: int
    #: simulated execution time of the query
    cost: float
    #: servers that could not be reached; when non-empty the response is
    #: partial (their vertices are missing, not absent from the graph)
    failed_partitions: Tuple[int, ...] = ()

    @property
    def partial(self) -> bool:
        return bool(self.failed_partitions)

    @property
    def response_processed_ratio(self) -> float:
        if self.processed == 0:
            return 0.0
        return len(self.response) / self.processed


@dataclass(frozen=True)
class DepthStep:
    """One resumable slice of a traversal (dispatch or one frontier depth).

    Yielded by :meth:`TraversalEngine.traverse_steps` after the slice's
    cluster work has executed.  ``cost`` is the simulated client-perceived
    time the slice added; ``busy`` maps server id to the busy-seconds the
    slice charged that server — the occupancy the concurrent scheduler
    queues on each server's event lane.
    """

    kind: str  # "dispatch" | "hop"
    cost: float
    busy: Dict[int, float] = field(default_factory=dict)
    depth: int = -1
    frontier: int = 0


class _QueryState:
    """Mutable accounting shared by the per-depth execution paths."""

    __slots__ = (
        "cost",
        "processed",
        "remote",
        "response",
        "failed",
        "visited",
        "hops",
        "local_visit",
        "cached",
    )

    def __init__(self, cost: float, hops: int, local_visit: float, cached: bool):
        self.cost = cost
        self.processed = 0
        self.remote = 0
        self.response: Set[int] = set()
        #: servers this query gave up on (down or unreachable after retries)
        self.failed: Set[int] = set()
        self.visited: Set[int] = set()
        self.hops = hops
        self.local_visit = local_visit
        self.cached = cached


class TraversalEngine:
    """Executes k-hop traversals over the servers through the catalog."""

    def __init__(
        self,
        servers: List[HermesServer],
        catalog: Catalog,
        network: SimulatedNetwork,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        location_cache: Optional[LocationCache] = None,
    ):
        self.servers = servers
        self.catalog = catalog
        self.network = network
        self.retry = retry or RetryPolicy()
        #: optional WorkloadModel fed one observation per frontier
        #: expansion (set via HermesCluster.attach_workload_model)
        self.workload_model = None
        #: bumped by :meth:`note_topology_change` when a migration commit
        #: re-homes vertices; in-flight traversals re-resolve their cached
        #: frontier hosts when they observe a new epoch (serial traversals
        #: never do — nothing commits between their depths)
        self.topology_epoch = 0
        self.attach_telemetry(telemetry or NULL_TELEMETRY)
        # Standalone engines get a private cache; a cluster passes the
        # shared instance the migration executor invalidates through.
        self.location_cache = location_cache or LocationCache(
            catalog, len(servers), telemetry=self.telemetry
        )

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._traversals = telemetry.counter(
            "traversals_total", "traversal queries executed"
        )
        self._processed = telemetry.counter(
            "traversal_processed_total", "vertices processed across traversals"
        )
        self._remote = telemetry.counter(
            "traversal_remote_hops_total", "traversal steps that crossed servers"
        )
        self._cost_hist = telemetry.histogram(
            "traversal_cost_seconds", "simulated execution time of one traversal"
        )
        self._model_observations = telemetry.counter(
            "workload_model_observations_total",
            "edge observations fed to the attached workload model",
        )

    def traverse(self, start: int, hops: int) -> TraversalResult:
        """Run a ``hops``-hop traversal from ``start`` to completion.

        Drives :meth:`traverse_steps` without pausing between depths —
        the serial execution model, byte-identical to the historical
        inline implementation.
        """
        steps = self.traverse_steps(start, hops)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def note_topology_change(self) -> None:
        """A migration commit re-homed vertices: any traversal paused
        between depths must re-resolve its frontier before expanding
        it (its cached hosts may now point at old primaries)."""
        self.topology_epoch += 1

    def traverse_steps(
        self, start: int, hops: int
    ) -> Generator[DepthStep, None, TraversalResult]:
        """Run a ``hops``-hop traversal as a resumable task.

        The query is dispatched to the server hosting ``start``; each
        frontier vertex is expanded on its hosting server, and stepping to
        a vertex hosted elsewhere is charged as a remote traversal (one
        aggregated message per destination server per depth in batched
        mode, one message per frontier entry in legacy mode).

        Yields one :class:`DepthStep` for the client dispatch and one per
        frontier depth, after that slice's work has executed — the
        concurrent scheduler interleaves other operations (and online
        migration copy-steps) between resumptions.  If a migration
        committed while the task was paused, the frontier is re-resolved
        through the location cache before the next depth runs, so the
        traversal never charges forwarding costs against a host it could
        already know is stale.
        """
        cost = self.network.config.client_dispatch_cost
        home = self.catalog.lookup(start)
        injector = self.network.fault_injector

        if injector is not None and injector.is_down(home):
            # The dispatch to the home server times out: the client gets
            # an empty partial result rather than an exception.
            result = self._degraded_dispatch(start, hops, home, cost)
            yield DepthStep(kind="dispatch", cost=result.cost)
            return result

        batched = self.network.config.batch_remote_hops
        state = _QueryState(
            cost, hops, self.network.local_visit(), cached=batched
        )
        span = self.telemetry.span("traversal", start=start, hops=hops)
        # Client dispatch happens before the first hop: push the causal
        # cursor so depth spans line up after it.
        span.advance(cost)

        # Frontier entries are (vertex, host, discovered_from_host): when
        # the traversal follows an edge whose endpoints live on different
        # servers, that step is a remote traversal — the per-cut-edge cost
        # that makes edge-cut the dominant performance factor (Section 1).
        frontier: List[Tuple[int, int, int]] = [(start, home, home)]
        epoch = self.topology_epoch
        yield DepthStep(kind="dispatch", cost=cost)

        for depth in range(hops + 1):
            if self.topology_epoch != epoch:
                # A migration committed while this task was paused: the
                # frontier's cached hosts may be stale.  Re-resolve
                # through the location cache (participants already know
                # the new homes) instead of paying forwarding charges —
                # or, in legacy mode, silently dropping moved vertices.
                frontier = self._refresh_frontier(frontier, state)
                epoch = self.topology_epoch
            depth_span = self.telemetry.span(
                "hop", depth=depth, frontier=len(frontier)
            )
            cost_before = state.cost
            busy_before = [
                server.busy_counter.value for server in self.servers
            ]
            if batched:
                next_frontier = self._run_depth_batched(frontier, depth, state)
            else:
                next_frontier = self._run_depth_legacy(frontier, depth, state)
            depth_span.finish(duration=state.cost - cost_before)
            busy = {}
            for server_id, before in enumerate(busy_before):
                delta = self.servers[server_id].busy_counter.value - before
                if delta > 0.0:
                    busy[server_id] = delta
            yield DepthStep(
                kind="hop",
                cost=state.cost - cost_before,
                busy=busy,
                depth=depth,
                frontier=len(frontier),
            )
            if not next_frontier:
                break
            frontier = next_frontier

        self._traversals.inc()
        self._processed.inc(state.processed)
        self._remote.inc(state.remote)
        self._cost_hist.observe(state.cost)
        span.set_attribute("processed", state.processed)
        span.set_attribute("remote_hops", state.remote)
        span.set_attribute("response", len(state.response))
        if state.failed:
            self.telemetry.counter(
                "traversals_partial_total",
                "traversals that returned partial results",
            ).inc()
            span.set_attribute("failed_partitions", sorted(state.failed))
        span.finish(duration=state.cost)

        return TraversalResult(
            start=start,
            hops=hops,
            response=tuple(sorted(state.response)),
            processed=state.processed,
            remote_hops=state.remote,
            cost=state.cost,
            failed_partitions=tuple(sorted(state.failed)),
        )

    def _refresh_frontier(
        self,
        frontier: List[Tuple[int, int, int]],
        state: _QueryState,
    ) -> List[Tuple[int, int, int]]:
        """Re-resolve every frontier entry's host after a topology change.

        Cached mode consults the discovering server's location cache
        (fresh for migration participants, self-correcting otherwise);
        legacy mode goes straight to the authoritative catalog.  Entries
        whose vertex left the catalog entirely keep their stale host and
        degrade through the normal unavailable-vertex path.
        """
        refreshed: List[Tuple[int, int, int]] = []
        for vertex, host, from_host in frontier:
            try:
                if state.cached:
                    resolved = self.location_cache.lookup_from(from_host, vertex)
                else:
                    resolved = self.catalog.lookup(vertex)
            except CatalogError:
                resolved = host
            refreshed.append((vertex, resolved, from_host))
        return refreshed

    # ------------------------------------------------------------------
    # Per-depth execution
    # ------------------------------------------------------------------
    def _run_depth_legacy(
        self,
        frontier: List[Tuple[int, int, int]],
        depth: int,
        state: _QueryState,
    ) -> List[Tuple[int, int, int]]:
        """One message per remote frontier entry (the pre-batching model)."""
        remote_service = self.network.config.remote_service_cost
        next_frontier: List[Tuple[int, int, int]] = []
        for vertex, host, from_host in frontier:
            if host in state.failed:
                # Already unreachable this query: don't retry on every
                # frontier entry — and don't keep landing same-host
                # entries on a crashed server either — just degrade.
                continue
            if host != from_host:
                try:
                    state.cost += self._hop(from_host, host)
                except FaultInjectedError as exc:
                    state.cost += exc.cost
                    state.failed.add(host)
                    continue
                state.remote += 1
                # Servicing the hop consumes CPU on both endpoints --
                # the "network IO" load that edge-cuts impose.
                self.servers[from_host].busy_counter.inc(remote_service)
                self.servers[host].busy_counter.inc(remote_service)
                state.cost += remote_service
            self._process_entry(vertex, host, depth, state, next_frontier)
        return next_frontier

    def _run_depth_batched(
        self,
        frontier: List[Tuple[int, int, int]],
        depth: int,
        state: _QueryState,
    ) -> List[Tuple[int, int, int]]:
        """One aggregated message per (src, dst) link, then entry work.

        The whole depth's frontier is grouped by link first, each link
        pays one round trip (plus per-entry marginals), and only then is
        the per-vertex work executed — matching how a real driver ships
        the frontier ahead of processing the responses.
        """
        remote_service = self.network.config.remote_service_cost
        # Aggregate remote entries per directed link, first-seen order.
        groups: dict = {}
        for vertex, host, from_host in frontier:
            if host != from_host and host not in state.failed:
                key = (from_host, host)
                groups[key] = groups.get(key, 0) + 1
        for (src, dst), count in groups.items():
            if dst in state.failed:
                # A message from another source already gave up on dst.
                continue
            try:
                state.cost += self._batched_hop(src, dst, count)
            except FaultInjectedError as exc:
                state.cost += exc.cost
                state.failed.add(dst)
                continue
            state.remote += count
            # Each aggregated message costs one RPC dispatch on both
            # endpoints — the batching win on server CPU, not just wire.
            self.servers[src].busy_counter.inc(remote_service)
            self.servers[dst].busy_counter.inc(remote_service)
            state.cost += remote_service

        next_frontier: List[Tuple[int, int, int]] = []
        for vertex, host, from_host in frontier:
            if host in state.failed:
                continue
            if not self._process_entry(vertex, host, depth, state, next_frontier):
                # The cached location may be stale (vertex migrated since
                # this server last looked it up): forward and retry once.
                resolved = self._forward_stale(vertex, host, from_host, state)
                if resolved is not None:
                    self._process_entry(
                        vertex, resolved, depth, state, next_frontier
                    )
        return next_frontier

    def _process_entry(
        self,
        vertex: int,
        host: int,
        depth: int,
        state: _QueryState,
        next_frontier: List[Tuple[int, int, int]],
    ) -> bool:
        """Visit ``vertex`` on ``host``; returns False if unavailable.

        Unavailable (mid-migration), missing (stale location hint) or
        absent vertices are treated as not in the local vertex set
        (Section 3.2) — the caller decides whether that can be a stale
        cache entry worth forwarding.
        """
        executing = self.servers[host]
        if not executing.store.is_available(vertex):
            return False
        state.processed += 1
        executing.visits_counter.inc()
        executing.busy_counter.inc(state.local_visit)
        state.cost += state.local_visit
        state.response.add(vertex)
        if depth == state.hops:
            return True
        # Keep multiplicity: a vertex reachable along several paths is
        # processed once per path (the paper's 2-hop ratio effect), but
        # expanded only once so work stays polynomial.
        if vertex in state.visited:
            return True
        state.visited.add(vertex)
        try:
            entries = executing.expand(vertex)
        except ServerDownError:
            # The host crashed mid-query (a window opened while this
            # frontier was in flight): its vertices stay in the
            # response, its expansions are lost.
            state.failed.add(host)
            return True
        model = self.workload_model
        if model is not None and entries:
            # Every frontier expansion follows edge (vertex, neighbor):
            # that is the per-edge traffic the heat model accumulates.
            for entry in entries:
                model.observe_edge(vertex, entry.neighbor)
            self._model_observations.inc(len(entries))
        if state.cached:
            cache = self.location_cache
            for entry in entries:
                next_frontier.append(
                    (entry.neighbor, cache.lookup_from(host, entry.neighbor), host)
                )
        else:
            for entry in entries:
                next_frontier.append(
                    (entry.neighbor, self.catalog.lookup(entry.neighbor), host)
                )
        return True

    def _forward_stale(
        self,
        vertex: int,
        host: int,
        from_host: int,
        state: _QueryState,
    ) -> Optional[int]:
        """Resolve a possibly-stale location hint via a forwarding hop.

        Returns the vertex's actual host after charging the old host's
        forward, or None when the vertex is genuinely unavailable (not in
        the catalog, mid-migration on its real host, or its real host is
        unreachable this query).  The querying server's cache entry is
        corrected so it pays the forward only once.
        """
        if not state.cached:
            return None
        try:
            actual = self.catalog.lookup(vertex)
        except CatalogError:
            return None
        if actual == host or actual in state.failed:
            return None
        try:
            state.cost += self._hop(host, actual)
        except FaultInjectedError as exc:
            state.cost += exc.cost
            state.failed.add(actual)
            return None
        state.remote += 1
        remote_service = self.network.config.remote_service_cost
        self.servers[host].busy_counter.inc(remote_service)
        self.servers[actual].busy_counter.inc(remote_service)
        state.cost += remote_service
        self.location_cache.learn(from_host, vertex, actual)
        return actual

    # ------------------------------------------------------------------
    # Fault-degradation helpers
    # ------------------------------------------------------------------
    def _hop(self, src: int, dst: int) -> float:
        """One remote hop, retried under the engine's policy on faults.

        Returns the total simulated cost including wasted attempts; the
        zero-fault path is a single direct call with no extra work.
        """
        if self.network.fault_injector is None:
            return self.network.remote_hop(src, dst)
        cost, wasted = self.retry.call(
            lambda: self.network.remote_hop(src, dst),
            injector=self.network.fault_injector,
            on_retry=self._on_retry,
        )
        return cost + wasted

    def _batched_hop(self, src: int, dst: int, count: int) -> float:
        """One aggregated message, retried as a unit under faults."""
        if self.network.fault_injector is None:
            return self.network.batched_hop(src, dst, count)
        cost, wasted = self.retry.call(
            lambda: self.network.batched_hop(src, dst, count),
            injector=self.network.fault_injector,
            on_retry=self._on_retry,
        )
        return cost + wasted

    def _on_retry(self, exc: FaultInjectedError, pause: float) -> None:
        self.telemetry.counter(
            "traversal_retries_total", "traversal hop retries after faults"
        ).inc()

    def _degraded_dispatch(
        self, start: int, hops: int, home: int, cost: float
    ) -> TraversalResult:
        """Empty partial result when the home server is down at dispatch."""
        cost += self.network.config.fault_timeout_cost
        span = self.telemetry.span("traversal", start=start, hops=hops)
        self._traversals.inc()
        self.telemetry.counter(
            "traversals_partial_total",
            "traversals that returned partial results",
        ).inc()
        self._cost_hist.observe(cost)
        span.set_attribute("processed", 0)
        span.set_attribute("remote_hops", 0)
        span.set_attribute("response", 0)
        span.set_attribute("failed_partitions", [home])
        span.finish(duration=cost)
        return TraversalResult(
            start=start,
            hops=hops,
            response=(),
            processed=0,
            remote_hops=0,
            cost=cost,
            failed_partitions=(home,),
        )

"""Concurrent client pool: drives operation traces against the cluster.

The paper's throughput experiments run "32 clients concurrently submitting
1-hop traversal requests" (Section 5.3.1).  The simulation models two
throughput limits and takes the binding one:

* **client-side pipelining** — with C clients, elapsed time is at least
  the total operation cost divided by C;
* **server saturation** — each vertex visit occupies its hosting server,
  so elapsed time is at least the busy time of the *hottest* server.
  This is why load balance matters: a partition hosting twice the traffic
  halves attainable throughput no matter how many clients submit.

Aggregate throughput is reported the way the paper plots it — total
visited (processed) vertices per measurement window — plus a
vertices-per-second rate for the Figure 10 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.exceptions import HermesError, MigrationAbortedError, WorkloadError
from repro.workloads.queries import (
    InsertEdge,
    InsertVertex,
    Operation,
    ReadVertex,
    Traversal,
)


@dataclass
class WorkloadReport:
    """Aggregate outcome of running a trace."""

    num_clients: int
    operations: int = 0
    reads: int = 0
    traversals: int = 0
    writes: int = 0
    #: total vertices processed (the paper's "Agg. Throughput (vertices)")
    processed_vertices: int = 0
    #: distinct vertices returned in responses
    response_vertices: int = 0
    remote_hops: int = 0
    total_cost: float = 0.0
    #: busy seconds of the single most-loaded server during the run
    max_server_busy: float = 0.0
    #: busy seconds per server (index = server id)
    server_busy: Dict[int, float] = field(default_factory=dict)
    #: operations attributed per client id (round-robin submission)
    client_operations: Dict[str, int] = field(default_factory=dict)
    #: simulated cost attributed per client id
    client_cost: Dict[str, float] = field(default_factory=dict)
    #: operations that ended in a cluster error (concurrent runs record
    #: the failure and move on; serial runs propagate, leaving this 0)
    failed_operations: int = 0
    #: event-timeline makespan of a concurrent run; None for serial runs
    #: (whose wall time is the analytic two-limit bound below)
    measured_wall_time: Optional[float] = None

    @property
    def wall_time(self) -> float:
        """Simulated wall-clock seconds.

        Concurrent runs report the event scheduler's measured makespan;
        serial runs fall back to the analytic binding constraint between
        client pipelining and hot-server saturation.
        """
        if self.measured_wall_time is not None:
            return self.measured_wall_time
        return max(self.total_cost / self.num_clients, self.max_server_busy)

    @property
    def throughput_vertices_per_second(self) -> float:
        if self.wall_time == 0:
            return 0.0
        return self.processed_vertices / self.wall_time

    @property
    def response_processed_ratio(self) -> float:
        if self.processed_vertices == 0:
            return 0.0
        return self.response_vertices / self.processed_vertices


class ClientPool:
    """Submits operations to a :class:`~repro.cluster.hermes.HermesCluster`.

    Every pool member has a stable client id (``client-0`` … ``client-N``)
    and operations are attributed to them round-robin — the hook the
    serving layer's per-tenant accounting uses.  Pass ``accounts`` (a
    :class:`~repro.serving.accounting.TenantAccounts`) to meter each
    operation onto its submitting client's ledger as it executes.
    """

    def __init__(
        self,
        cluster,
        num_clients: int = 32,
        client_prefix: str = "client",
        accounts=None,
    ):
        if num_clients < 1:
            raise WorkloadError("need at least one client")
        self.cluster = cluster
        self.num_clients = num_clients
        #: stable per-client ids, round-robin attribution order
        self.client_ids = [
            f"{client_prefix}-{i}" for i in range(num_clients)
        ]
        self.accounts = accounts
        #: the ConcurrentExecutor of the most recent concurrent run
        #: (None after serial runs) — exposes the event log, per-task
        #: handles and coherence sweep results to tests and the auditor
        self.last_engine = None

    def client_of(self, operation_index: int) -> str:
        """Which client id submits the ``operation_index``-th operation."""
        return self.client_ids[operation_index % self.num_clients]

    def run(
        self,
        trace: Iterable[Operation],
        duration: Optional[float] = None,
        max_operations: Optional[int] = None,
        rebalance_every: Optional[int] = None,
    ) -> WorkloadReport:
        """Execute operations until the trace, duration, or cap runs out.

        ``duration`` is a simulated wall-clock budget: the run stops once
        the wall time exceeds it — mirroring the paper's fixed-length
        experiment windows.  With ``rebalance_every=N`` the cluster's
        imbalance trigger is checked every N operations and the
        lightweight repartitioner runs when it fires (online operation,
        as in a deployed Hermes).
        """
        concurrency = getattr(self.cluster, "concurrency", None)
        if concurrency is not None and concurrency.enabled:
            return self._run_concurrent(
                trace,
                duration=duration,
                max_operations=max_operations,
                rebalance_every=rebalance_every,
            )
        report = WorkloadReport(num_clients=self.num_clients)
        busy_before = {
            server.server_id: server.busy_seconds
            for server in self.cluster.servers
        }

        def busy_delta(server) -> float:
            # A server registered after the run started (elastic
            # scenarios) is baselined at its busy time when first
            # observed: only work it does *during* this run counts,
            # instead of a KeyError — or, with a zero default, its
            # entire pre-join busy time double-counted into
            # max_server_busy.
            baseline = busy_before.setdefault(
                server.server_id, server.busy_seconds
            )
            return server.busy_seconds - baseline

        def update_server_busy() -> None:
            for server in self.cluster.servers:
                report.server_busy[server.server_id] = busy_delta(server)
            report.max_server_busy = max(report.server_busy.values(), default=0.0)

        for operation in trace:
            if max_operations is not None and report.operations >= max_operations:
                break
            if duration is not None:
                # Only the binding maximum matters for the stop check, so
                # skip rebuilding the per-server map on the hot path; the
                # full map is refreshed at rebalance boundaries and exit.
                report.max_server_busy = max(
                    (busy_delta(server) for server in self.cluster.servers),
                    default=0.0,
                )
                if report.wall_time >= duration:
                    break
            self._execute(operation, report)
            if (
                rebalance_every is not None
                and report.operations % rebalance_every == 0
            ):
                update_server_busy()
                self.cluster.rebalance()
        update_server_busy()
        return report

    def _execute(self, operation: Operation, report: WorkloadReport) -> None:
        client = self.client_of(report.operations)
        report.operations += 1
        if isinstance(operation, Traversal):
            result = self.cluster.traverse(operation.start, operation.hops)
            report.traversals += 1
            report.processed_vertices += result.processed
            report.response_vertices += len(result.response)
            report.remote_hops += result.remote_hops
            cost = result.cost
        elif isinstance(operation, ReadVertex):
            _, cost = self.cluster.read_vertex(operation.vertex)
            report.reads += 1
            report.processed_vertices += 1
            report.response_vertices += 1
        elif isinstance(operation, InsertVertex):
            cost = self.cluster.add_vertex(
                operation.vertex,
                weight=operation.weight,
                properties=operation.properties,
            )
            report.writes += 1
        elif isinstance(operation, InsertEdge):
            cost = self.cluster.add_edge(
                operation.u, operation.v, properties=operation.properties
            )
            report.writes += 1
        else:
            raise WorkloadError(f"unknown operation type: {operation!r}")
        report.total_cost += cost
        report.client_operations[client] = (
            report.client_operations.get(client, 0) + 1
        )
        report.client_cost[client] = report.client_cost.get(client, 0.0) + cost
        if self.accounts is not None:
            self.accounts.record_admitted(client, cost)

    # ------------------------------------------------------------------
    # Concurrent execution (ConcurrencyConfig.enabled)
    # ------------------------------------------------------------------
    def _run_concurrent(
        self,
        trace: Iterable[Operation],
        duration: Optional[float] = None,
        max_operations: Optional[int] = None,
        rebalance_every: Optional[int] = None,
    ) -> WorkloadReport:
        """Run the trace through the event scheduler.

        Each client becomes one long-lived task executing its round-robin
        share of the trace in order; the scheduler interleaves all
        clients (and any online migration they trigger) at hop
        granularity.  ``wall_time`` becomes the *measured* event-timeline
        makespan instead of the serial two-limit bound.  An operation
        that fails with a cluster error is counted in
        ``failed_operations`` and its client moves on — one crashed
        write must not silently drop the rest of that client's trace.
        """
        from repro.concurrency.engine import ConcurrentExecutor

        report = WorkloadReport(num_clients=self.num_clients)
        busy_before = {
            server.server_id: server.busy_seconds
            for server in self.cluster.servers
        }
        ops = []
        for index, operation in enumerate(trace):
            if max_operations is not None and index >= max_operations:
                break
            ops.append(operation)
        per_client: list = [[] for _ in range(self.num_clients)]
        for index, operation in enumerate(ops):
            per_client[index % self.num_clients].append(operation)

        engine = ConcurrentExecutor(self.cluster)
        self.last_engine = engine
        # Register on the cluster so membership changes mid-run (an
        # elastic add_server inside the trace) grow this engine's event
        # lanes instead of leaving the newcomer unschedulable.
        self.cluster._concurrent_engine = engine
        scheduler = engine.scheduler

        def account(operation, outcome, cost: float, client: str) -> None:
            report.operations += 1
            if isinstance(operation, Traversal):
                report.traversals += 1
                report.processed_vertices += outcome.processed
                report.response_vertices += len(outcome.response)
                report.remote_hops += outcome.remote_hops
            elif isinstance(operation, ReadVertex):
                report.reads += 1
                report.processed_vertices += 1
                report.response_vertices += 1
            else:
                report.writes += 1
            report.total_cost += cost
            report.client_operations[client] = (
                report.client_operations.get(client, 0) + 1
            )
            report.client_cost[client] = (
                report.client_cost.get(client, 0.0) + cost
            )
            if self.accounts is not None:
                self.accounts.record_admitted(client, cost)

        def client_task(client: str, assigned):
            for operation in assigned:
                if duration is not None and scheduler.now >= duration:
                    break
                try:
                    outcome, cost = yield from engine.operation_task(operation)
                except HermesError:
                    report.failed_operations += 1
                    continue
                account(operation, outcome, cost, client)
                if (
                    rebalance_every is not None
                    and report.operations % rebalance_every == 0
                ):
                    try:
                        yield from engine.rebalance_task()
                    except MigrationAbortedError:
                        # Rolled back exactly; traffic keeps flowing.
                        pass

        for client_index, assigned in enumerate(per_client):
            if assigned:
                client = self.client_ids[client_index]
                engine.submit(client_task(client, assigned), label=client)
        report.measured_wall_time = engine.run()

        for server in self.cluster.servers:
            baseline = busy_before.setdefault(
                server.server_id, server.busy_seconds
            )
            report.server_busy[server.server_id] = (
                server.busy_seconds - baseline
            )
        report.max_server_busy = max(report.server_busy.values(), default=0.0)
        return report

"""SPAR-style one-hop replication (comparison middleware, Section 6).

SPAR (Pujol et al., SIGCOMM CCR 2010) achieves perfect 1-hop query
locality by *replicating*: every vertex gets a replica on each partition
that hosts one of its neighbors, so any user's neighborhood is always
fully local.  The trade-offs the paper points out:

* storage and write amplification grow with the replication factor
  (every update to a vertex must reach all of its replicas);
* "SPAR is restricted to keeping only one-hop neighbours local while
  Hermes can support general remote traversals" — a 2-hop query still
  leaves the partition, because replicas do not carry their neighbors'
  neighborhoods.

:class:`OneHopReplicator` computes the replica placement implied by a
partitioning and quantifies those trade-offs, so the ``spar`` experiment
can put Hermes and SPAR side by side.

Since the serving layer (PR 7) wires the replicator into the live read
path, the class is instrumented: an attached
:class:`~repro.telemetry.Telemetry` hub counts placement computations
and the replica copies they produced, and exports the headline
trade-off numbers (replication factor, total replicas, write
amplification) as gauges every time :meth:`OneHopReplicator.stats`
runs.  With the default null hub all of it is no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.graph.adjacency import SocialGraph
from repro.partitioning.base import Partitioning
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class ReplicationStats:
    """Cost/benefit accounting of a one-hop replication layout."""

    num_vertices: int
    #: total replica copies (excluding each vertex's primary)
    total_replicas: int
    #: replicas + primaries per partition
    records_per_partition: List[int]
    #: average number of partitions a write to a vertex must reach
    write_amplification: float
    #: fraction of 1-hop traversal steps that stay local (1.0 by design)
    one_hop_local_fraction: float
    #: fraction of 2-hop steps that stay local (replicas don't help here)
    two_hop_local_fraction: float

    @property
    def replication_factor(self) -> float:
        """Average copies per vertex, primaries included."""
        if self.num_vertices == 0:
            return 0.0
        return (self.num_vertices + self.total_replicas) / self.num_vertices


class OneHopReplicator:
    """Compute SPAR's replica placement for a given partitioning."""

    def __init__(self, telemetry: Optional[Telemetry] = None):
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """(Re)bind the replication metric instruments."""
        self.telemetry = telemetry
        self._placements_counter = telemetry.counter(
            "replication_placements_total",
            "one-hop replica placement computations",
        )
        self._copies_counter = telemetry.counter(
            "replication_copies_total",
            "replica copies produced by placement computations",
        )

    def placements(
        self, graph: SocialGraph, partitioning: Partitioning
    ) -> Dict[int, Set[int]]:
        """Map vertex -> set of partitions holding a *replica* of it
        (its primary partition is excluded)."""
        replicas: Dict[int, Set[int]] = {v: set() for v in graph.vertices()}
        for u, v in graph.edges():
            pu = partitioning.partition_of(u)
            pv = partitioning.partition_of(v)
            if pu != pv:
                # Each endpoint needs a replica where the other lives so
                # that both neighborhoods are fully local.
                replicas[u].add(pv)
                replicas[v].add(pu)
        self._placements_counter.inc()
        self._copies_counter.inc(sum(len(parts) for parts in replicas.values()))
        return replicas

    def stats(
        self, graph: SocialGraph, partitioning: Partitioning
    ) -> ReplicationStats:
        replicas = self.placements(graph, partitioning)
        total_replicas = sum(len(parts) for parts in replicas.values())
        records = [len(partitioning.vertices_in(p)) for p in range(partitioning.num_partitions)]
        for parts in replicas.values():
            for partition in parts:
                records[partition] += 1
        write_amplification = (
            (graph.num_vertices + total_replicas) / graph.num_vertices
            if graph.num_vertices
            else 0.0
        )
        stats = ReplicationStats(
            num_vertices=graph.num_vertices,
            total_replicas=total_replicas,
            records_per_partition=records,
            write_amplification=write_amplification,
            one_hop_local_fraction=1.0,
            two_hop_local_fraction=self._two_hop_local_fraction(
                graph, partitioning
            ),
        )
        self.telemetry.gauge(
            "replication_factor", "average copies per vertex, primaries included"
        ).set(stats.replication_factor)
        self.telemetry.gauge(
            "replication_total_replicas", "replica copies excluding primaries"
        ).set(total_replicas)
        self.telemetry.gauge(
            "replication_write_amplification",
            "average partitions reached by one vertex write",
        ).set(write_amplification)
        return stats

    @staticmethod
    def _two_hop_local_fraction(
        graph: SocialGraph, partitioning: Partitioning
    ) -> float:
        """Fraction of second-hop expansions that stay on the start
        vertex's partition.

        Under SPAR the first hop is always local (the replica set), but
        expanding a *replicated neighbor* requires its own partition's
        data: a second-hop step is local only when the intermediate
        neighbor's primary lives on the start partition.
        """
        local = 0
        total = 0
        for start in graph.vertices():
            home = partitioning.partition_of(start)
            for middle in graph.neighbors(start):
                middle_home = partitioning.partition_of(middle)
                degree = graph.degree(middle)
                total += degree
                if middle_home == home:
                    local += degree
        if total == 0:
            return 1.0
        return local / total

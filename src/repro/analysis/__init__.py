"""Result analysis and rendering shared by experiments and benchmarks."""

from repro.analysis.memory import (
    auxiliary_memory_bytes,
    multilevel_memory_bytes,
)
from repro.analysis.report import BarChart, Table, format_float, format_percent

__all__ = [
    "Table",
    "BarChart",
    "format_percent",
    "format_float",
    "auxiliary_memory_bytes",
    "multilevel_memory_bytes",
]

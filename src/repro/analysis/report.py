"""Plain-text table rendering for experiment output.

Every experiment renders its result as an aligned ASCII table with the
same rows/series the paper's table or figure reports, so that the bench
output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"


def format_float(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


class BarChart:
    """Horizontal grouped bar chart in plain text (for figure experiments).

    Example output::

        Figure 9 - orkut, 1-hop
        =======================
        Metis   |############################                 2,322
        Hermes  |###############################              2,545
        Random  |################                             1,300
    """

    def __init__(self, title: str, width: int = 44):
        if width < 8:
            raise ValueError("width must be >= 8")
        self.title = title
        self.width = width
        self.bars: List[tuple] = []

    def add_bar(self, label: str, value: float, display: Optional[str] = None) -> None:
        if value < 0:
            raise ValueError("bar values must be non-negative")
        self.bars.append((label, value, display))

    def to_text(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        if not self.bars:
            return "\n".join(lines + ["(no data)"])
        label_width = max(len(label) for label, _, _ in self.bars)
        peak = max(value for _, value, _ in self.bars) or 1.0
        for label, value, display in self.bars:
            filled = int(round(self.width * value / peak))
            shown = display if display is not None else f"{value:,.0f}"
            lines.append(
                f"{label.ljust(label_width)} |"
                f"{'#' * filled}{' ' * (self.width - filled)}  {shown}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


class Table:
    """A titled, column-aligned text table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []
        self.footnotes: List[str] = []

    def add_row(self, *cells: object) -> None:
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_footnote(self, text: str) -> None:
        self.footnotes.append(text)

    def to_text(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        lines = [self.title, "=" * len(self.title)]
        lines.append(render_row(self.headers))
        lines.append(render_row(["-" * width for width in widths]))
        for row in self.rows:
            lines.append(render_row(row))
        for note in self.footnotes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()

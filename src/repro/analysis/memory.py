"""Memory-footprint estimators for the Section 5.3 comparison.

The paper reports that METIS needs ~23 GB / ~17 GB to partition Orkut /
Twitter while the lightweight repartitioner needs only 2-3 GB: "Metis'
memory requirements scale with the number of relationships and coarsening
stages, while the lightweight repartitioner scales with the number of
vertices and partitions."  These estimators express the same asymmetry
for our in-process implementations so the claim can be demonstrated at
any scale.
"""

from __future__ import annotations

from repro.core.auxiliary import AuxiliaryData
from repro.graph.adjacency import SocialGraph

#: bytes per stored integer counter / weight entry (CPython object ~28B,
#: but a packed implementation needs 8; we charge the packed size because
#: the claim is about information, not interpreter overhead)
_ENTRY_BYTES = 8


def auxiliary_memory_bytes(aux: AuxiliaryData) -> int:
    """Bytes of auxiliary data: sparse counters + per-partition weights.

    Theorem 2: amortized ``n + Theta(alpha)`` entries per partition.
    """
    counter_entries, weight_entries = aux.memory_entries()
    per_vertex_overhead = aux.num_vertices * 2  # partition id + own weight
    return (counter_entries + weight_entries + per_vertex_overhead) * _ENTRY_BYTES


def multilevel_memory_bytes(
    graph: SocialGraph, coarsening_ratio: float = 0.55
) -> int:
    """Bytes a multilevel partitioner holds across its level hierarchy.

    Every level stores vertex weights plus *both directions* of every
    edge with its weight; level sizes form a geometric series with the
    coarsening ratio, so the total is ~``1/(1-ratio)`` times the finest
    level — this is what scales with relationships, not vertices.
    """
    finest = (graph.num_vertices + 4 * graph.num_edges) * _ENTRY_BYTES
    series_factor = 1.0 / (1.0 - coarsening_ratio)
    return int(finest * series_factor)

"""Memory-footprint estimators for the Section 5.3 comparison.

The paper reports that METIS needs ~23 GB / ~17 GB to partition Orkut /
Twitter while the lightweight repartitioner needs only 2-3 GB: "Metis'
memory requirements scale with the number of relationships and coarsening
stages, while the lightweight repartitioner scales with the number of
vertices and partitions."  These estimators express the same asymmetry
for our in-process implementations so the claim can be demonstrated at
any scale.
"""

from __future__ import annotations

import gc
import sys
import tracemalloc
from typing import Any, Callable, Tuple

from repro.core.auxiliary import AuxiliaryData
from repro.graph.adjacency import SocialGraph
from repro.graph.compact import CompactGraph

#: bytes per stored integer counter / weight entry (CPython object ~28B,
#: but a packed implementation needs 8; we charge the packed size because
#: the claim is about information, not interpreter overhead)
_ENTRY_BYTES = 8


def auxiliary_memory_bytes(aux: AuxiliaryData) -> int:
    """Bytes of auxiliary data: sparse counters + per-partition weights.

    Theorem 2: amortized ``n + Theta(alpha)`` entries per partition.
    """
    counter_entries, weight_entries = aux.memory_entries()
    per_vertex_overhead = aux.num_vertices * 2  # partition id + own weight
    return (counter_entries + weight_entries + per_vertex_overhead) * _ENTRY_BYTES


def multilevel_memory_bytes(
    graph: SocialGraph, coarsening_ratio: float = 0.55
) -> int:
    """Bytes a multilevel partitioner holds across its level hierarchy.

    Every level stores vertex weights plus *both directions* of every
    edge with its weight; level sizes form a geometric series with the
    coarsening ratio, so the total is ~``1/(1-ratio)`` times the finest
    level — this is what scales with relationships, not vertices.
    """
    finest = (graph.num_vertices + 4 * graph.num_edges) * _ENTRY_BYTES
    series_factor = 1.0 / (1.0 - coarsening_ratio)
    return int(finest * series_factor)


# ----------------------------------------------------------------------
# Measured (not estimated) footprints, for the BENCH_scale comparison
# ----------------------------------------------------------------------
def measure_memory(fn: Callable[[], Any]) -> Tuple[Any, int, int]:
    """Run ``fn`` under tracemalloc; return ``(result, retained, peak)``.

    ``retained`` is the bytes still allocated when ``fn`` returns (the
    steady-state size of whatever it built), ``peak`` the high-water mark
    while it ran (the build working set).  tracemalloc hooks CPython's
    allocator *and* numpy's array allocator, so dict-of-sets and CSR
    builds are measured on the same scale.  Nesting is not supported.
    """
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        gc.collect()
        retained, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, retained, peak


def peak_rss_bytes() -> int:
    """Process-lifetime peak resident set (VmHWM), 0 where unavailable.

    A whole-process high-water mark: right for "did the n=1M run fit",
    not for comparing two builds in one process (use
    :func:`measure_memory` for that).
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes.
        return usage * 1024 if sys.platform != "darwin" else usage
    except Exception:
        return 0


def compact_graph_bytes(graph: CompactGraph) -> int:
    """Exact bytes of a CSR graph's arrays (index + neighbors + weights)."""
    return graph.memory_bytes()


def social_graph_bytes(graph: SocialGraph) -> int:
    """Measured bytes of the dict-of-sets representation.

    Sums ``sys.getsizeof`` over the adjacency dict, every neighbor set
    and the weight dict, plus one boxed-int charge per set entry (CPython
    interns only small ints; distinct vertex IDs above 256 are distinct
    objects, and each set slot holds a pointer to one).
    """
    int_bytes = sys.getsizeof(1 << 20)
    adjacency = graph._adjacency
    weights = graph._weights
    total = sys.getsizeof(adjacency) + sys.getsizeof(weights)
    for neighbors in adjacency.values():
        total += sys.getsizeof(neighbors) + len(neighbors) * int_bytes
    total += len(weights) * sys.getsizeof(1.0)
    return total

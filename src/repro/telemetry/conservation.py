"""Conservation queries over the telemetry and network accounting.

The simulator keeps the same traffic in three places: the legacy
:class:`~repro.cluster.network.NetworkStats` send-side counters, its
receive-side mirror, and the labelled counters in the telemetry registry.
In a correct run the three always agree — every delivered message is
charged exactly once to the sender, once to the receiver and once to the
registry, and a faulted message to none of them.  The simtest auditor
runs these queries between schedule steps; any disagreement means an
accounting path dropped or double-counted traffic.
"""

from __future__ import annotations

from typing import List


def network_conservation_violations(stats) -> List[str]:
    """Check send-side == receive-side accounting on a NetworkStats.

    Returns human-readable violation strings (empty when conserved):

    * aggregate messages/bytes sent must equal messages/bytes received;
    * per directed link, bytes-sent must equal bytes-received and the
      message counts must match;
    * the aggregates must equal the sum of their per-link breakdowns.
    """
    problems: List[str] = []
    if stats.messages != stats.messages_received:
        problems.append(
            f"messages sent={stats.messages} != received={stats.messages_received}"
        )
    if stats.bytes_sent != stats.bytes_received:
        problems.append(
            f"bytes sent={stats.bytes_sent} != received={stats.bytes_received}"
        )
    links = set(stats.per_link) | set(stats.received_per_link)
    for link in sorted(links):
        sent = stats.per_link.get(link)
        received = stats.received_per_link.get(link)
        if sent is None or received is None:
            problems.append(f"link {link} accounted on only one side")
            continue
        if sent.bytes != received.bytes:
            problems.append(
                f"link {link} bytes sent={sent.bytes} != received={received.bytes}"
            )
        if sent.messages != received.messages:
            problems.append(
                f"link {link} messages sent={sent.messages}"
                f" != received={received.messages}"
            )
    link_messages = sum(link.messages for link in stats.per_link.values())
    link_bytes = sum(link.bytes for link in stats.per_link.values())
    if link_messages != stats.messages:
        problems.append(
            f"per-link message sum {link_messages} != aggregate {stats.messages}"
        )
    if link_bytes != stats.bytes_sent:
        problems.append(
            f"per-link byte sum {link_bytes} != aggregate {stats.bytes_sent}"
        )
    return problems


def registry_conservation_violations(telemetry, network) -> List[str]:
    """Check the registry's network counters against the NetworkStats.

    ``network_messages_total`` / ``network_bytes_total`` (summed over the
    hop/transfer kinds for this network's label set) are an independent
    accounting path of the same wire traffic; they must match the legacy
    counters exactly.
    """
    problems: List[str] = []
    if telemetry.null:
        # No-op registry: there is no second accounting path to compare.
        return problems
    registry = telemetry.registry
    labels = dict(getattr(network, "_labels", {}))
    metric_messages = registry.total("network_messages_total", **labels)
    metric_bytes = registry.total("network_bytes_total", **labels)
    if int(metric_messages) != network.stats.messages:
        problems.append(
            f"registry network_messages_total={int(metric_messages)}"
            f" != stats.messages={network.stats.messages}"
        )
    if int(metric_bytes) != network.stats.bytes_sent:
        problems.append(
            f"registry network_bytes_total={int(metric_bytes)}"
            f" != stats.bytes_sent={network.stats.bytes_sent}"
        )
    return problems

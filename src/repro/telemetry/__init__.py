"""repro.telemetry — cluster-wide metrics, tracing, and profiling.

Hermes is a monitoring-driven system: servers watch partition weights and
fire the repartitioner when the imbalance factor leaves the
``(2 - epsilon, epsilon)`` band.  This package is the first-class
observability layer behind that loop:

* :class:`MetricsRegistry` — labelled counters, gauges and fixed-bucket
  histograms (:class:`NullRegistry` is the zero-overhead no-sink path);
* :class:`Tracer` — span trees on the *simulated* clock, causally
  ordered, so distributed traversals, migrations and repartitioning
  stages nest the way they "happened" in simulated time;
* :class:`Telemetry` — the hub instrumented components hold (registry +
  tracer + event log), with :func:`install` for a process-wide default;
* exporters — JSONL event log (:func:`export_jsonl`), Prometheus text
  (:func:`prometheus_text`), and a human summary (:func:`summary_text`).
"""

from repro.telemetry.hub import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_default,
    install,
    installed,
)
from repro.telemetry.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.tracing import NULL_SPAN, SpanHandle, Tracer
from repro.telemetry.conservation import (
    network_conservation_violations,
    registry_conservation_violations,
)
from repro.telemetry.exporters import (
    export_jsonl,
    metric_total,
    prometheus_text,
    read_jsonl,
    summary_text,
)

__all__ = [
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTelemetry",
    "SpanHandle",
    "Telemetry",
    "Tracer",
    "export_jsonl",
    "get_default",
    "install",
    "installed",
    "metric_total",
    "network_conservation_violations",
    "prometheus_text",
    "read_jsonl",
    "registry_conservation_violations",
    "summary_text",
]

"""Telemetry exporters: JSONL event log, Prometheus text, summary table.

The JSONL log is the machine-readable provenance format the experiment
runner writes with ``--telemetry-out``: one JSON object per line, each
tagged with a ``type`` of ``meta``, ``metric``, ``span`` or ``event``.
Metric lines are a full registry snapshot at export time; span and event
lines carry the shared causal ``seq`` so the original interleaving can be
reconstructed with a single sort.

The Prometheus dump follows the text exposition format closely enough to
be scraped (counter/gauge samples, ``_bucket``/``_sum``/``_count``
histogram series) — this repo never runs an HTTP endpoint, but the format
keeps the door open and is convenient to diff.

The summary is the human end: top metric families, the busiest network
links, and the largest root spans, rendered with the same
:class:`~repro.analysis.report.Table` the experiments use.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.report import Table
from repro.telemetry.hub import Telemetry
from repro.telemetry.registry import MetricsRegistry


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in sorted(registry.families(), key=lambda f: f.name):
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, instrument in sorted(family.series.items()):
            labels = dict(key)
            if family.kind == "histogram":
                for bound, cumulative in instrument.cumulative_buckets():
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{family.name}_bucket{_format_labels(bucket_labels)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} {instrument.sum!r}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)} {instrument.count}"
                )
            else:
                value = instrument.value
                shown = repr(value) if isinstance(value, float) else value
                lines.append(f"{family.name}{_format_labels(labels)} {shown}")
    return "\n".join(lines) + "\n"


def export_jsonl(
    telemetry: Telemetry,
    path: str,
    meta: Optional[Dict[str, object]] = None,
) -> int:
    """Write the full telemetry state as JSONL; returns the line count."""
    telemetry.flush()
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        header: Dict[str, object] = {"type": "meta"}
        if meta:
            header.update(meta)
        handle.write(json.dumps(header) + "\n")
        lines += 1
        for sample in telemetry.registry.snapshot():
            handle.write(json.dumps({"type": "metric", **sample}) + "\n")
            lines += 1
        for span in telemetry.tracer.spans:
            handle.write(json.dumps({"type": "span", **span}) + "\n")
            lines += 1
        for event in telemetry.events:
            handle.write(json.dumps({"type": "event", **event}) + "\n")
            lines += 1
    return lines


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a telemetry JSONL file back into records (tests, analysis)."""
    records: List[Dict[str, object]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def metric_total(
    records: List[Dict[str, object]], name: str, **label_filter
) -> float:
    """Sum a metric family from loaded JSONL records (parity checks)."""
    total = 0.0
    wanted = {key: str(value) for key, value in label_filter.items()}
    for record in records:
        if record.get("type") != "metric" or record.get("name") != name:
            continue
        labels = record.get("labels", {})
        if all(labels.get(key) == value for key, value in wanted.items()):
            total += record.get("value", 0.0)
    return total


def summary_text(
    telemetry: Telemetry,
    network_stats=None,
    top: int = 10,
) -> str:
    """Human-readable digest: metric totals, hot links, largest spans."""
    sections: List[str] = []

    totals = Table("Telemetry summary - metric totals", ["metric", "series", "total"])
    for family in sorted(telemetry.registry.families(), key=lambda f: f.name):
        if family.kind == "histogram":
            count = sum(s.count for s in family.series.values())
            total = sum(s.sum for s in family.series.values())
            totals.add_row(f"{family.name} (hist)", len(family.series),
                           f"n={count} sum={total:.6g}")
        else:
            total = sum(s.value for s in family.series.values())
            totals.add_row(family.name, len(family.series), f"{total:.6g}")
    sections.append(totals.to_text())

    if network_stats is not None and getattr(network_stats, "per_link", None):
        links = Table(
            f"Busiest network links (top {top} by bytes)",
            ["src", "dst", "messages", "bytes"],
        )
        for (src, dst), link in network_stats.top_links(top):
            links.add_row(src, dst, link.messages, link.bytes)
        sections.append(links.to_text())

    if telemetry.tracer.spans:
        roots = [s for s in telemetry.tracer.spans if s["parent_id"] is None]
        roots.sort(key=lambda s: s["duration"], reverse=True)
        spans = Table(
            f"Largest root spans (top {top} of {len(roots)})",
            ["span", "start", "duration", "attrs"],
        )
        for span in roots[:top]:
            attrs = ", ".join(
                f"{key}={value}" for key, value in sorted(span["attrs"].items())
            )
            spans.add_row(
                span["name"], f"{span['start']:.6f}",
                f"{span['duration']:.6f}", attrs or "-",
            )
        sections.append(spans.to_text())

    if telemetry.events:
        by_kind: Dict[str, int] = {}
        for event in telemetry.events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        events = Table("Events", ["kind", "count"])
        for kind in sorted(by_kind):
            events.add_row(kind, by_kind[kind])
        sections.append(events.to_text())

    return "\n\n".join(sections)

"""Metric instruments and the registry that owns them.

The registry is deliberately Prometheus-shaped: a *family* is a named
metric of one kind (counter, gauge, histogram) and a family holds one
*series* per distinct label set.  Instruments are plain attribute-bag
objects whose hot methods (``inc``/``set``/``observe``) do nothing but
arithmetic, so registry-backed counters cost about the same as the bare
``self.visits += 1`` attributes they replace.

Two registries exist:

* :class:`MetricsRegistry` — the real thing; always safe to leave
  attached because instruments are just numbers in memory;
* :class:`NullRegistry` — the no-sink fast path: every request returns a
  shared no-op instrument, so instrumented code pays one attribute load
  and one empty method call.  Standalone hot-path objects (the
  repartitioner, a bare :class:`~repro.cluster.network.SimulatedNetwork`)
  default to this.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import TelemetryError


#: label sets are canonicalized to a sorted tuple of (key, value) pairs
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


#: default histogram buckets for simulated-seconds latencies (20 µs local
#: visits up to whole-second migrations)
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0, 2.0, 5.0,
)

#: default buckets for payload sizes in bytes
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """Monotonically increasing count (simulation code may also ``set``
    it when restoring legacy attribute semantics)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value


class Gauge:
    """Point-in-time value (weights, queue depths, edge-cut)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram: cumulative-style export, O(log b) observe."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, labels: LabelKey, bounds: Sequence[float]):
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: one slot per finite upper bound plus the +Inf overflow slot
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record ``value`` with Prometheus ``le`` (less-or-EQUAL) semantics.

        ``bisect_left`` returns the first bound >= value, so an
        observation landing exactly on a bucket bound counts toward that
        bound's bucket, not the next one — ``observe(0.1)`` increments
        ``le="0.1"``.  A ``bisect_right`` here would silently flip every
        on-bound observation into the next bucket and desynchronize the
        exposition from real Prometheus clients.
        """
        self.count += 1
        self.sum += value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, Prometheus ``le`` style."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, in_bucket in zip(self.bounds, self.bucket_counts):
            running += in_bucket
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class _NoOpInstrument:
    """Shared do-nothing stand-in for every instrument kind."""

    kind = "noop"
    __slots__ = ()
    name = "noop"
    labels: LabelKey = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NoOpInstrument()


class _Family:
    __slots__ = ("name", "kind", "help", "bounds", "series")

    def __init__(self, name: str, kind: str, help: str, bounds=None):
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.series: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Owns every metric family; get-or-create access by name + labels."""

    #: NullRegistry flips this so hot paths can branch with one load
    null = False

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _series(self, name: str, kind: str, help: str, labels, bounds=None):
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise TelemetryError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        key = _label_key(labels)
        instrument = family.series.get(key)
        if instrument is None:
            if kind == "counter":
                instrument = Counter(name, key)
            elif kind == "gauge":
                instrument = Gauge(name, key)
            else:
                instrument = Histogram(name, key, family.bounds)
            family.series[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._series(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._series(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        family = self._families.get(name)
        if family is None:
            source = DEFAULT_TIME_BUCKETS if buckets is None else buckets
            bounds = tuple(sorted(source))
            if not bounds:
                raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        else:
            bounds = family.bounds
        return self._series(name, "histogram", help, labels, bounds)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def families(self) -> Iterator[_Family]:
        return iter(self._families.values())

    def value(self, name: str, **labels) -> float:
        """Read one counter/gauge series (0.0 when it never existed)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        instrument = family.series.get(_label_key(labels))
        return instrument.value if instrument is not None else 0.0

    def total(self, name: str, **label_filter) -> float:
        """Sum a counter/gauge family across series matching the filter."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        wanted = _label_key(label_filter)
        total = 0.0
        for key, instrument in family.series.items():
            if all(pair in key for pair in wanted):
                total += instrument.value
        return total

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-able dump of every series (the JSONL ``metric`` records)."""
        samples: List[Dict[str, object]] = []
        for family in self._families.values():
            for key, instrument in sorted(family.series.items()):
                record: Dict[str, object] = {
                    "name": family.name,
                    "kind": family.kind,
                    "labels": dict(key),
                }
                if family.kind == "histogram":
                    record["count"] = instrument.count
                    record["sum"] = instrument.sum
                    record["buckets"] = [
                        [bound, cumulative]
                        for bound, cumulative in instrument.cumulative_buckets()
                    ]
                else:
                    record["value"] = instrument.value
                samples.append(record)
        return samples


class NullRegistry(MetricsRegistry):
    """Every request resolves to the shared no-op instrument."""

    null = True

    def counter(self, name: str, help: str = "", **labels):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels):
        return NULL_INSTRUMENT

    def histogram(self, name, help="", buckets=None, **labels):
        return NULL_INSTRUMENT

"""Span tracing on the *simulated* clock.

The cluster's notion of time is ``HermesCluster.now`` — a float of
simulated seconds that only advances when an operation charges its cost.
Wall-clock tracers are useless here: every step of a traversal "happens"
at the same wall instant.  Instead the tracer keeps a **causal cursor**
per span:

* a root span starts at ``clock()`` (the cluster's current simulated
  time);
* a child span starts at its parent's cursor — i.e. after every
  previously finished sibling;
* finishing a span with an explicit ``duration`` (the simulated cost the
  instrumented code just computed) places its end at ``start + duration``
  and advances the parent's cursor to that end.

The result is a nested, causally ordered trace tree in simulated
seconds: migration copy/barrier/remove phases line up end to start,
repartitioner iterations follow one another, and traversal depth spans
partition the query's total cost.

When ``recording`` is False, :meth:`Tracer.span` returns a shared no-op
context manager — no allocation, no clock read — which is the fast path
every instrumented module takes by default.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class SpanHandle:
    """A live span; context-manager protocol ends it at ``clock()``."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start", "cursor",
                 "seq", "attrs", "_finished")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: Optional[int],
                 name: str, start: float, seq: int, attrs: Dict[str, object]):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        #: where the next child span begins (advances as children finish)
        self.cursor = start
        self.seq = seq
        self.attrs = attrs
        self._finished = False

    def set_attribute(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def advance(self, duration: float) -> None:
        """Charge simulated cost directly to this span (no child span)."""
        self.cursor += duration

    def finish(self, duration: Optional[float] = None) -> None:
        if self._finished:
            return
        self._finished = True
        self.tracer._finish(self, duration)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc))
        self.finish()


class _NullSpan:
    """Shared no-op span for the not-recording fast path."""

    __slots__ = ()
    span_id = -1
    cursor = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def advance(self, duration: float) -> None:
        pass

    def finish(self, duration: Optional[float] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Produces causally ordered span trees from the simulated clock."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        recording: bool = False,
    ):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.recording = recording
        #: finished spans, as JSON-able dicts, in finish order
        self.spans: List[Dict[str, object]] = []
        self._stack: List[SpanHandle] = []
        self._seq = 0

    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """Shared causal sequence (spans and hub events interleave on it)."""
        self._seq += 1
        return self._seq

    def span(self, name: str, **attrs):
        """Open a span; use as a context manager or finish() explicitly."""
        if not self.recording:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            start = parent.cursor
            parent_id = parent.span_id
        else:
            start = self.clock()
            parent_id = None
        handle = SpanHandle(
            self, len(self.spans) + len(self._stack), parent_id, name,
            start, self.next_seq(), dict(attrs),
        )
        self._stack.append(handle)
        return handle

    def _finish(self, handle: SpanHandle, duration: Optional[float]) -> None:
        # Out-of-order finishes (a forgotten inner span) close the inner
        # spans first so the stack stays consistent.
        while self._stack and self._stack[-1] is not handle:
            self._stack[-1].finish()
        if self._stack:
            self._stack.pop()
        if duration is not None:
            end = handle.start + duration
        else:
            end = max(handle.cursor, self.clock(), handle.start)
        if self._stack:
            parent = self._stack[-1]
            if end > parent.cursor:
                parent.cursor = end
        self.spans.append({
            "span_id": handle.span_id,
            "parent_id": handle.parent_id,
            "name": handle.name,
            "start": handle.start,
            "end": end,
            "duration": end - handle.start,
            "seq": handle.seq,
            "attrs": handle.attrs,
        })

    # ------------------------------------------------------------------
    def trees(self) -> List[Dict[str, object]]:
        """Finished spans nested into trees (children in causal order)."""
        by_id: Dict[int, Dict[str, object]] = {}
        roots: List[Dict[str, object]] = []
        for record in sorted(self.spans, key=lambda r: r["seq"]):
            node = dict(record)
            node["children"] = []
            by_id[node["span_id"]] = node
        for node in by_id.values():
            parent = by_id.get(node["parent_id"]) if node["parent_id"] is not None else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        for node in by_id.values():
            node["children"].sort(key=lambda child: child["seq"])
        return roots

"""The Telemetry hub: one registry + one tracer + one event log.

A hub is what instrumented components hold.  Three usage modes:

* ``NULL_TELEMETRY`` — module-level default for standalone hot-path
  objects; metrics, spans and events are all no-ops;
* ``Telemetry()`` — metrics on (cheap in-memory numbers; this is what
  backs the legacy ``HermesServer.visits``-style attribute API), spans
  and events off.  :class:`~repro.cluster.hermes.HermesCluster` creates
  one of these by default;
* ``Telemetry(record=True)`` — everything on: spans and timestamped
  events accumulate for export (``--telemetry-out``).

A process-wide default can be installed with :func:`install` — the
experiment runner and the benchmark harness use this to hand a recording
hub to every cluster an experiment builds internally, without threading
the hub through each experiment module's signature.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry, NullRegistry
from repro.telemetry.tracing import Tracer


class Telemetry:
    """Aggregates the registry, the tracer, and the event log."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        record: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(clock=clock, recording=record)
        self.events: List[Dict[str, object]] = []
        self.recording = record
        # Keyed by callback identity so re-attaching a component replaces
        # its old hook instead of accumulating one per attach; bound
        # methods hold their owner only weakly so a dead component's hook
        # disappears with it.
        self._flush_hooks: Dict[object, Tuple[Optional[weakref.ref], Callable]] = {}

    # Convenience passthroughs so call sites read telemetry.counter(...)
    def counter(self, name: str, help: str = "", **labels):
        return self.registry.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels):
        return self.registry.gauge(name, help, **labels)

    def histogram(self, name: str, help: str = "", buckets=None, **labels):
        return self.registry.histogram(name, help, buckets, **labels)

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, **fields) -> None:
        """Record one timestamped event (trigger decisions, rebalances)."""
        if not self.recording:
            return
        self.events.append({
            "kind": kind,
            "time": self.tracer.clock(),
            "seq": self.tracer.next_seq(),
            "fields": fields,
        })

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Attach a simulated clock (the most recent cluster wins)."""
        self.tracer.clock = clock

    def on_flush(self, hook: Callable[[], None]) -> None:
        """Register a hook run before every export (e.g. components that
        materialize expensive label spaces lazily).

        Hooks are deduplicated by identity: re-registering the same bound
        method (same owner, same function) replaces the earlier entry, so
        a component that re-attaches telemetry does not stack stale hooks.
        Bound-method owners are referenced weakly — a garbage-collected
        component's hook is dropped rather than kept alive by the hub.
        """
        owner = getattr(hook, "__self__", None)
        if owner is not None:
            key = (id(owner), hook.__func__)
            try:
                ref = weakref.ref(owner, lambda _, k=key: self._flush_hooks.pop(k, None))
            except TypeError:
                # Owner type without weakref support: hold it strongly.
                self._flush_hooks[key] = (None, hook)
                return
            self._flush_hooks[key] = (ref, hook.__func__)
        else:
            self._flush_hooks[hook] = (None, hook)

    def flush(self) -> None:
        for ref, func in list(self._flush_hooks.values()):
            if ref is None:
                func()
                continue
            owner = ref()
            if owner is not None:
                func(owner)

    def start_recording(self) -> None:
        """Turn span/event capture on (metrics are always on)."""
        self.recording = True
        self.tracer.recording = True

    def stop_recording(self) -> None:
        self.recording = False
        self.tracer.recording = False

    @property
    def null(self) -> bool:
        return self.registry.null


class NullTelemetry(Telemetry):
    """The do-nothing hub; a single shared instance is the default."""

    def __init__(self) -> None:
        super().__init__(registry=NullRegistry(), record=False)

    def event(self, kind: str, **fields) -> None:
        pass

    def start_recording(self) -> None:
        pass

    def on_flush(self, hook: Callable[[], None]) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()

_installed: Optional[Telemetry] = None


def install(hub: Optional[Telemetry]) -> None:
    """Set (or with None, clear) the process-wide default hub."""
    global _installed
    _installed = hub


def installed() -> Optional[Telemetry]:
    """The installed process-wide hub, if any."""
    return _installed


def get_default() -> Telemetry:
    """The installed hub, else the shared null hub."""
    return _installed if _installed is not None else NULL_TELEMETRY

"""Exception hierarchy for the Hermes reproduction.

Every error raised by this library derives from :class:`HermesError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystem-specific conditions.
"""

from __future__ import annotations


class HermesError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(HermesError):
    """Base class for errors from the in-memory graph substrate."""


class VertexNotFoundError(GraphError, KeyError):
    """A referenced vertex does not exist in the graph."""

    def __init__(self, vertex: int):
        super().__init__(f"vertex {vertex!r} does not exist")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u!r}, {v!r}) does not exist")
        self.u = u
        self.v = v


class DuplicateVertexError(GraphError, ValueError):
    """An attempt was made to add a vertex that already exists."""

    def __init__(self, vertex: int):
        super().__init__(f"vertex {vertex!r} already exists")
        self.vertex = vertex


class PartitioningError(HermesError):
    """Base class for partitioning-related errors."""


class InvalidPartitionError(PartitioningError, ValueError):
    """A partition index is out of range or otherwise invalid."""


class StorageError(HermesError):
    """Base class for storage-engine errors."""


class RecordNotFoundError(StorageError, KeyError):
    """A record ID was not found in its store."""


class RecordDeletedError(StorageError):
    """A record exists but has been deleted (tombstoned)."""


class PageError(StorageError):
    """A page-level I/O or bounds failure."""


class StoreCorruptionError(StorageError):
    """Persisted store bytes failed an integrity check on open."""


class TransactionError(HermesError):
    """Base class for transaction subsystem errors."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired before the deadlock-detection timeout.

    Hermes replaced Neo4j's centralized loop detection with timeout-based
    deadlock detection; a timeout is treated as a presumed deadlock and the
    waiting transaction is aborted.
    """


class TransactionAbortedError(TransactionError):
    """The transaction was aborted and cannot perform further operations."""


class VertexUnavailableError(TransactionError):
    """The vertex is in the *unavailable* state of the migration remove step.

    Queries referencing such a vertex execute as if the vertex is not part
    of the local vertex set (paper Section 3.2).
    """


class ClusterError(HermesError):
    """Base class for distributed-cluster errors."""


class FaultInjectedError(ClusterError):
    """Base class for failures produced by the fault-injection layer.

    ``cost`` is the simulated time the failed operation wasted (timeouts
    spent waiting, retransmissions, retry backoff); callers charge it to
    their cost accounting even though the operation did not succeed.
    """

    def __init__(self, message: str, cost: float = 0.0):
        super().__init__(message)
        self.cost = cost


class ServerDownError(FaultInjectedError):
    """The addressed server is inside a crash window and unreachable."""

    def __init__(self, server: int, cost: float = 0.0):
        super().__init__(f"server {server} is down", cost=cost)
        self.server = server


class MessageLossError(FaultInjectedError):
    """A network message was dropped; the sender timed out waiting."""

    def __init__(self, src: int, dst: int, cost: float = 0.0):
        super().__init__(f"message {src} -> {dst} was lost", cost=cost)
        self.src = src
        self.dst = dst


class NetworkTimeoutError(FaultInjectedError):
    """A message was delivered but its response timed out."""

    def __init__(self, src: int, dst: int, cost: float = 0.0):
        super().__init__(f"message {src} -> {dst} timed out", cost=cost)
        self.src = src
        self.dst = dst


class MigrationAbortedError(ClusterError):
    """A physical migration failed and was rolled back.

    The cluster is byte-identical to its pre-migration state; ``report``
    carries the cost of the aborted attempt (the simulated time is spent
    even though no records moved) and ``cause`` the original failure.
    The same plan can be retried once the fault clears.
    """

    def __init__(self, cause: Exception, report):
        super().__init__(f"migration aborted and rolled back: {cause}")
        self.cause = cause
        self.report = report


class CatalogError(ClusterError):
    """The vertex -> partition catalog has no entry for a vertex."""


class ServerNotFoundError(ClusterError):
    """A message was addressed to an unknown server."""


class WorkloadError(HermesError):
    """A workload/trace specification is invalid."""


class InvariantViolationError(HermesError):
    """The simtest auditor found cluster state violating an invariant.

    ``violations`` is the full list of
    :class:`~repro.simtest.invariants.InvariantViolation` records the
    audit produced (the message shows the first one).
    """

    def __init__(self, violations):
        first = violations[0] if violations else None
        super().__init__(
            f"{len(violations)} invariant violation(s): {first}"
        )
        self.violations = list(violations)


class TelemetryError(HermesError):
    """Misuse of the telemetry subsystem (metric kind clash, bad buckets)."""


class ServingError(HermesError):
    """Base class for front-door serving-layer errors."""


class AdmissionRejectedError(ServingError):
    """Base class for typed load-shed rejections from the serving layer.

    Every concrete rejection carries a machine-readable ``reason`` slug
    used as the telemetry label and in the queue's conservation
    accounting (``serving_shed_total{reason=...}``).
    """

    reason = "rejected"


class QueueFullError(AdmissionRejectedError):
    """The query queue was at its bounded depth."""

    reason = "queue_full"

    def __init__(self, depth: int, max_depth: int):
        super().__init__(f"queue depth {depth} at bound {max_depth}")
        self.depth = depth
        self.max_depth = max_depth


class OverloadShedError(AdmissionRejectedError):
    """Admission control shed the operation to protect latency.

    Raised both for priority-class shedding (the controller's state
    machine floors out the operation's class) and for the per-operation
    latency guard (the target server's backlog would blow the queueing
    delay bound even for an admitted class).
    """

    reason = "overload_shed"

    def __init__(self, message: str, state: str, wait: float = 0.0):
        super().__init__(message)
        self.state = state
        self.wait = wait


class InsufficientCreditsError(AdmissionRejectedError):
    """The submitting tenant's credit balance was exhausted."""

    reason = "insufficient_credits"

    def __init__(self, tenant: str, balance: float):
        super().__init__(f"tenant {tenant!r} has {balance:.1f} credits left")
        self.tenant = tenant
        self.balance = balance

"""Typed property-value serialization for the dynamic property store.

Neo4j stores property values in dynamic-length records with a type tag;
this is the equivalent codec.  ``pickle`` is deliberately avoided — stored
bytes must be safe to exchange between servers during migration.

Supported types: None, bool, int, float, str, bytes, and (possibly
nested) lists of these.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.exceptions import StorageError

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6
_TAG_LIST = 7

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")


def encode_value(value: Any) -> bytes:
    """Serialize a property value to bytes (raises StorageError if untyped)."""
    parts: List[bytes] = []
    _encode_into(value, parts)
    return b"".join(parts)


def _encode_into(value: Any, parts: List[bytes]) -> None:
    if value is None:
        parts.append(bytes([_TAG_NONE]))
    elif value is True:
        parts.append(bytes([_TAG_TRUE]))
    elif value is False:
        parts.append(bytes([_TAG_FALSE]))
    elif isinstance(value, int):
        payload = value.to_bytes(
            max(1, (value.bit_length() + 8) // 8), "little", signed=True
        )
        parts.append(bytes([_TAG_INT]))
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
    elif isinstance(value, float):
        parts.append(bytes([_TAG_FLOAT]))
        parts.append(_F64.pack(value))
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        parts.append(bytes([_TAG_STR]))
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
    elif isinstance(value, bytes):
        parts.append(bytes([_TAG_BYTES]))
        parts.append(_U32.pack(len(value)))
        parts.append(value)
    elif isinstance(value, list):
        parts.append(bytes([_TAG_LIST]))
        parts.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, parts)
    else:
        raise StorageError(
            f"unsupported property value type: {type(value).__name__}"
        )


def decode_value(payload: bytes) -> Any:
    """Inverse of :func:`encode_value`."""
    value, offset = _decode_from(payload, 0)
    if offset != len(payload):
        raise StorageError(
            f"trailing bytes after value: consumed {offset} of {len(payload)}"
        )
    return value


def _decode_from(payload: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(payload):
        raise StorageError("truncated value payload")
    tag = payload[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_FLOAT:
        end = offset + _F64.size
        _check_length(payload, end)
        return _F64.unpack_from(payload, offset)[0], end
    if tag in (_TAG_INT, _TAG_STR, _TAG_BYTES):
        end = offset + _U32.size
        _check_length(payload, end)
        length = _U32.unpack_from(payload, offset)[0]
        offset = end
        end = offset + length
        _check_length(payload, end)
        chunk = payload[offset:end]
        if tag == _TAG_INT:
            return int.from_bytes(chunk, "little", signed=True), end
        if tag == _TAG_STR:
            return chunk.decode("utf-8"), end
        return bytes(chunk), end
    if tag == _TAG_LIST:
        end = offset + _U32.size
        _check_length(payload, end)
        count = _U32.unpack_from(payload, offset)[0]
        offset = end
        items = []
        for _ in range(count):
            item, offset = _decode_from(payload, offset)
            items.append(item)
        return items, offset
    raise StorageError(f"unknown value tag {tag}")


def _check_length(payload: bytes, end: int) -> None:
    if end > len(payload):
        raise StorageError("truncated value payload")

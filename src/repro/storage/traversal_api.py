"""Neo4j-style Traversal API over a local GraphStore (Figure 5).

"The main querying interface to Neo4j is traversal based.  Traversals
use the graph structure and relationships between records to answer user
queries" (Section 4).  Figure 5 shows the Traversal API as the layer the
lightweight Hermes components plug under; this module provides that
layer for a single server's store:

* :class:`TraversalDescription` — a fluent builder: search order
  (BFS/DFS), depth bounds, node uniqueness, relationship filters, and a
  user evaluator deciding per path whether to *include* it in the result
  and whether to *continue* expanding beyond it;
* :class:`Path` — an alternating node/relationship sequence from the
  start node, as Neo4j returns.

Distributed k-hop queries (the cluster's
:class:`~repro.cluster.traversal.TraversalEngine`) are intentionally a
separate, cost-accounted engine; this API is the local building block
the paper's system exposes to applications.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Set, Tuple

from repro.exceptions import StorageError
from repro.storage.graph_store import GraphStore, NeighborEntry


class Order(enum.Enum):
    BREADTH_FIRST = "bfs"
    DEPTH_FIRST = "dfs"


class Uniqueness(enum.Enum):
    #: visit each node at most once in the whole traversal (the default)
    NODE_GLOBAL = "node-global"
    #: only forbid a node to repeat within a single path (allows cycles
    #: across branches — the multiplicity 2-hop analytics count on)
    NODE_PATH = "node-path"


class Evaluation(enum.Enum):
    INCLUDE_AND_CONTINUE = (True, True)
    INCLUDE_AND_PRUNE = (True, False)
    EXCLUDE_AND_CONTINUE = (False, True)
    EXCLUDE_AND_PRUNE = (False, False)

    @property
    def include(self) -> bool:
        return self.value[0]

    @property
    def expand(self) -> bool:
        return self.value[1]


@dataclass(frozen=True)
class Path:
    """An alternating node/relationship path from the traversal start."""

    nodes: Tuple[int, ...]
    relationships: Tuple[int, ...]

    @property
    def start(self) -> int:
        return self.nodes[0]

    @property
    def end(self) -> int:
        return self.nodes[-1]

    @property
    def length(self) -> int:
        return len(self.relationships)

    def extend(self, entry: NeighborEntry) -> "Path":
        return Path(
            nodes=self.nodes + (entry.neighbor,),
            relationships=self.relationships + (entry.rel_id,),
        )

    def __repr__(self) -> str:
        return "Path(" + "-".join(str(node) for node in self.nodes) + ")"


RelationshipFilter = Callable[[NeighborEntry], bool]
Evaluator = Callable[[Path], Evaluation]


class TraversalDescription:
    """Immutable fluent builder for local traversals.

    Example
    -------
    >>> td = (TraversalDescription()
    ...       .breadth_first()
    ...       .max_depth(2)
    ...       .exclude_ghosts())
    >>> # paths = list(td.traverse(store, start))
    """

    def __init__(self) -> None:
        self._order = Order.BREADTH_FIRST
        self._min_depth = 0
        self._max_depth: Optional[int] = None
        self._uniqueness = Uniqueness.NODE_GLOBAL
        self._rel_filter: Optional[RelationshipFilter] = None
        self._evaluator: Optional[Evaluator] = None

    def _copy(self) -> "TraversalDescription":
        clone = TraversalDescription()
        clone.__dict__.update(self.__dict__)
        return clone

    # -- builder methods -------------------------------------------------
    def breadth_first(self) -> "TraversalDescription":
        clone = self._copy()
        clone._order = Order.BREADTH_FIRST
        return clone

    def depth_first(self) -> "TraversalDescription":
        clone = self._copy()
        clone._order = Order.DEPTH_FIRST
        return clone

    def min_depth(self, depth: int) -> "TraversalDescription":
        if depth < 0:
            raise StorageError("min_depth must be >= 0")
        clone = self._copy()
        clone._min_depth = depth
        return clone

    def max_depth(self, depth: int) -> "TraversalDescription":
        if depth < 0:
            raise StorageError("max_depth must be >= 0")
        clone = self._copy()
        clone._max_depth = depth
        return clone

    def uniqueness(self, uniqueness: Uniqueness) -> "TraversalDescription":
        clone = self._copy()
        clone._uniqueness = uniqueness
        return clone

    def filter_relationships(
        self, predicate: RelationshipFilter
    ) -> "TraversalDescription":
        clone = self._copy()
        clone._rel_filter = predicate
        return clone

    def exclude_ghosts(self) -> "TraversalDescription":
        """Only follow primary (property-bearing) relationship records."""
        return self.filter_relationships(lambda entry: not entry.ghost)

    def evaluator(self, evaluator: Evaluator) -> "TraversalDescription":
        clone = self._copy()
        clone._evaluator = evaluator
        return clone

    # -- execution --------------------------------------------------------
    def traverse(self, store: GraphStore, start: int) -> Iterator[Path]:
        """Yield the included paths, in traversal order."""
        if not store.is_available(start):
            return
        initial = Path(nodes=(start,), relationships=())
        frontier = deque([initial])
        visited_global: Set[int] = {start}

        while frontier:
            path = (
                frontier.popleft()
                if self._order is Order.BREADTH_FIRST
                else frontier.pop()
            )
            evaluation = self._evaluate(path)
            if evaluation.include and path.length >= self._min_depth:
                yield path
            if not evaluation.expand:
                continue
            if self._max_depth is not None and path.length >= self._max_depth:
                continue
            for entry in store.neighbor_entries(path.end):
                if self._rel_filter is not None and not self._rel_filter(entry):
                    continue
                if not self._admissible(entry.neighbor, path, visited_global):
                    continue
                if self._uniqueness is Uniqueness.NODE_GLOBAL:
                    visited_global.add(entry.neighbor)
                if not store.is_available(entry.neighbor):
                    continue
                frontier.append(path.extend(entry))

    def _admissible(self, neighbor: int, path: Path, visited: Set[int]) -> bool:
        if self._uniqueness is Uniqueness.NODE_GLOBAL:
            return neighbor not in visited
        return neighbor not in path.nodes

    def _evaluate(self, path: Path) -> Evaluation:
        if self._evaluator is None:
            return Evaluation.INCLUDE_AND_CONTINUE
        return self._evaluator(path)

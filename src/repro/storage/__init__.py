"""Neo4j-style storage engine (paper Section 4).

Hermes extends Neo4j's storage layer; this package rebuilds that layer in
Python with the same record model:

* three stores — **node**, **relationship** and **property** — where node
  and relationship records are fixed-size and struct-packed into pages,
  and property values live in a dynamic (variable-length) store;
* relationships are kept in **doubly-linked chains** per endpoint: a node
  records only its first relationship, the rest are reached by following
  the links — so the adjacency list is recovered with purely local reads;
* cross-partition relationships get a **ghost** counterpart record on the
  remote side that preserves graph structure but carries no properties;
* a monotonically increasing **ID allocator** plus a **B+Tree** index from
  record ID to storage slot (Hermes replaced Neo4j's offset-based
  addressing because migrated records break contiguous ID allocation).
"""

from repro.storage.btree import BPlusTree
from repro.storage.durable import DurableRecordStore, DurableTransaction
from repro.storage.graph_store import GraphStore
from repro.storage.ids import IdAllocator
from repro.storage.node_store import NodeRecord, NodeStore
from repro.storage.pages import PagedFile
from repro.storage.property_store import PropertyRecord, PropertyStore
from repro.storage.records import RecordCodec
from repro.storage.relationship_store import RelationshipRecord, RelationshipStore
from repro.storage.traversal_api import (
    Evaluation,
    Path,
    TraversalDescription,
    Uniqueness,
)
from repro.storage.values import decode_value, encode_value
from repro.storage.wal import LogKind, LogRecord, WriteAheadLog, recover

__all__ = [
    "WriteAheadLog",
    "LogRecord",
    "LogKind",
    "recover",
    "DurableRecordStore",
    "DurableTransaction",
    "TraversalDescription",
    "Path",
    "Evaluation",
    "Uniqueness",
    "BPlusTree",
    "IdAllocator",
    "PagedFile",
    "RecordCodec",
    "NodeStore",
    "NodeRecord",
    "RelationshipStore",
    "RelationshipRecord",
    "PropertyStore",
    "PropertyRecord",
    "GraphStore",
    "encode_value",
    "decode_value",
]

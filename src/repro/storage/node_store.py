"""The node store: fixed-size node records.

A node record keeps only the bare minimum (paper Section 4: "basic
information on nodes"): its first relationship pointer (the head of the
doubly-linked relationship chain), its first property pointer, its read
popularity weight, and two flags — ``in_use`` and ``available``.  The
*available* flag implements the migration remove step: an unavailable node
is treated by queries as if it were not part of the local vertex set.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

from repro.storage.pages import PagedFile
from repro.storage.records import NULL_REF, FixedRecordStore, RecordCodec

_FLAG_IN_USE = 0x1
_FLAG_AVAILABLE = 0x2


@dataclass(frozen=True)
class NodeRecord:
    """One fixed-size node record."""

    node_id: int
    first_rel: int = NULL_REF
    first_prop: int = NULL_REF
    weight: float = 1.0
    available: bool = True

    def with_first_rel(self, rel_id: int) -> "NodeRecord":
        return replace(self, first_rel=rel_id)

    def with_first_prop(self, prop_id: int) -> "NodeRecord":
        return replace(self, first_prop=prop_id)

    def with_weight(self, weight: float) -> "NodeRecord":
        return replace(self, weight=weight)

    def with_available(self, available: bool) -> "NodeRecord":
        return replace(self, available=available)


class NodeCodec(RecordCodec):
    FORMAT = "<Bqqqd"

    def pack(self, record: NodeRecord) -> bytes:
        flags = _FLAG_IN_USE
        if record.available:
            flags |= _FLAG_AVAILABLE
        return struct.pack(
            self.FORMAT,
            flags,
            record.node_id,
            record.first_rel,
            record.first_prop,
            record.weight,
        )

    def unpack(self, payload: bytes) -> NodeRecord:
        flags, node_id, first_rel, first_prop, weight = struct.unpack(
            self.FORMAT, payload
        )
        return NodeRecord(
            node_id=node_id,
            first_rel=first_rel,
            first_prop=first_prop,
            weight=weight,
            available=bool(flags & _FLAG_AVAILABLE),
        )

    def header(self, payload: bytes) -> Tuple[bool, int]:
        flags, node_id = struct.unpack_from("<Bq", payload)
        return bool(flags & _FLAG_IN_USE), node_id


class NodeStore:
    """Typed facade over the node record store."""

    def __init__(self, paged_file: Optional[PagedFile] = None):
        self._store = FixedRecordStore(NodeCodec(), paged_file=paged_file)

    def write(self, record: NodeRecord) -> None:
        self._store.write(record.node_id, record)

    def read(self, node_id: int) -> NodeRecord:
        return self._store.read(node_id)

    def delete(self, node_id: int) -> None:
        self._store.delete(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def ids(self) -> Iterator[int]:
        return self._store.ids()

    def records(self) -> Iterator[NodeRecord]:
        return self._store.records()

    def max_id(self) -> Optional[int]:
        return self._store.max_id()

    @property
    def size_bytes(self) -> int:
        return self._store.pages.size_bytes

    def save(self, path: str) -> None:
        self._store.save(path)

    @classmethod
    def load(cls, path: str) -> "NodeStore":
        store = cls.__new__(cls)
        store._store = FixedRecordStore.load(path, NodeCodec())
        return store

"""GraphStore: the per-server storage engine facade (paper Section 4).

One ``GraphStore`` is the local database of one Hermes server.  It owns a
node store, a relationship store and a property store, and maintains:

* the doubly-linked relationship chains of every *local* node — a
  relationship record links into the chain of each endpoint that is
  hosted here; pointers for remote endpoints stay NULL;
* **ghost** relationship records for cross-partition edges, so that the
  adjacency list of a local node is recovered without any network I/O
  ("complete locality in finding the adjacency list of a graph node");
* property chains for nodes and (non-ghost) relationships;
* the node *available* flag used by the migration remove step;
* striped, monotonically increasing ID allocation for relationships and
  properties so no two servers ever mint the same ID.

Record ownership convention for cross-partition relationships: the
partition hosting the relationship's ``src`` endpoint holds the primary
(property-bearing) record; the other side holds the ghost.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.exceptions import StorageError, VertexUnavailableError
from repro.storage.ids import IdAllocator
from repro.storage.node_store import NodeRecord, NodeStore
from repro.storage.property_store import PropertyStore
from repro.storage.records import NULL_REF
from repro.storage.relationship_store import RelationshipRecord, RelationshipStore


@dataclass(frozen=True)
class NeighborEntry:
    """One hop out of a local node's adjacency chain."""

    neighbor: int
    rel_id: int
    ghost: bool


@dataclass(frozen=True)
class StoreStats:
    """Size accounting for one server's stores."""

    num_nodes: int
    num_relationships: int
    num_ghost_relationships: int
    num_properties: int
    bytes_nodes: int
    bytes_relationships: int
    bytes_properties: int

    @property
    def total_bytes(self) -> int:
        return self.bytes_nodes + self.bytes_relationships + self.bytes_properties


class GraphStore:
    """The local graph database of one server."""

    def __init__(self, server_id: int = 0, num_servers: int = 1):
        self.server_id = server_id
        self.nodes = NodeStore()
        self.relationships = RelationshipStore()
        self.properties = PropertyStore()
        self._rel_ids = IdAllocator(stripe=server_id, num_stripes=num_servers)
        self._prop_ids = IdAllocator(stripe=server_id, num_stripes=num_servers)
        #: optional durability observer (see cluster/durability.ServerJournal);
        #: notified after every *logical* mutation — pointer-only chain
        #: rewrites are derived state and stay silent.
        self.observer = None

    # -- observer notifications ----------------------------------------
    def _notify_node(self, node_id: int) -> None:
        if self.observer is not None:
            self.observer.node_changed(node_id)

    def _notify_node_removed(self, node_id: int) -> None:
        if self.observer is not None:
            self.observer.node_removed(node_id)

    def _notify_rel(self, rel_id: int) -> None:
        if self.observer is not None:
            self.observer.rel_changed(rel_id)

    def _notify_rel_removed(self, rel_id: int) -> None:
        if self.observer is not None:
            self.observer.rel_removed(rel_id)

    # ==================================================================
    # Nodes
    # ==================================================================
    def create_node(
        self,
        node_id: int,
        weight: float = 1.0,
        properties: Optional[Dict[str, Any]] = None,
        available: bool = True,
    ) -> NodeRecord:
        if node_id in self.nodes:
            raise StorageError(f"node {node_id} already exists")
        record = NodeRecord(node_id=node_id, weight=weight, available=available)
        self.nodes.write(record)
        for key, value in (properties or {}).items():
            self.set_node_property(node_id, key, value)
        self._notify_node(node_id)
        return self.nodes.read(node_id)

    def has_node(self, node_id: int) -> bool:
        return node_id in self.nodes

    def node(self, node_id: int) -> NodeRecord:
        return self.nodes.read(node_id)

    def is_available(self, node_id: int) -> bool:
        """False for missing nodes and for nodes in the migration
        *unavailable* state — queries treat both identically."""
        if node_id not in self.nodes:
            return False
        return self.nodes.read(node_id).available

    def set_available(self, node_id: int, available: bool) -> None:
        self.nodes.write(self.nodes.read(node_id).with_available(available))
        self._notify_node(node_id)

    def _require_available(self, node_id: int) -> NodeRecord:
        record = self.nodes.read(node_id)
        if not record.available:
            raise VertexUnavailableError(
                f"node {node_id} is unavailable (being migrated away)"
            )
        return record

    def node_weight(self, node_id: int) -> float:
        return self.nodes.read(node_id).weight

    def add_node_weight(self, node_id: int, delta: float) -> float:
        record = self.nodes.read(node_id)
        updated = record.with_weight(record.weight + delta)
        self.nodes.write(updated)
        self._notify_node(node_id)
        return updated.weight

    def delete_node(self, node_id: int) -> None:
        """Remove a node, all its relationship records and its properties."""
        record = self.nodes.read(node_id)
        entries = list(self.neighbor_entries(node_id, include_unavailable=True))
        for entry in entries:
            self.delete_relationship(entry.rel_id)
        self._delete_property_chain(record.first_prop)
        self.nodes.delete(node_id)
        self._notify_node_removed(node_id)

    def node_ids(self) -> Iterator[int]:
        return self.nodes.ids()

    def membership(self) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """``(available, unavailable)`` node-id sets hosted by this store.

        The store-membership enumeration the simtest auditor compares
        against the catalog: available nodes are the ones this server
        *serves*; unavailable ones are mid-migration remove-step state
        and must not appear anywhere as a serving replica.
        """
        available = set()
        unavailable = set()
        for node_id in self.nodes.ids():
            if self.nodes.read(node_id).available:
                available.add(node_id)
            else:
                unavailable.add(node_id)
        return frozenset(available), frozenset(unavailable)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # ==================================================================
    # Relationship chains
    # ==================================================================
    def allocate_rel_id(self) -> int:
        return self._rel_ids.allocate()

    def create_relationship(
        self,
        rel_id: int,
        src: int,
        dst: int,
        ghost: bool = False,
        properties: Optional[Dict[str, Any]] = None,
    ) -> RelationshipRecord:
        """Insert a relationship record, linking into every local endpoint.

        ``rel_id`` is global: for a cross-partition edge both sides store a
        record under the same ID (one primary, one ghost).  At least one
        endpoint must be local.  Ghost records reject properties.
        """
        if src == dst:
            raise StorageError("self-relationships are not allowed")
        if rel_id in self.relationships:
            raise StorageError(f"relationship {rel_id} already exists here")
        if ghost and properties:
            raise StorageError("ghost relationships cannot carry properties")
        src_local = src in self.nodes
        dst_local = dst in self.nodes
        if not (src_local or dst_local):
            raise StorageError(
                f"neither endpoint of relationship {rel_id} is local"
            )
        self._rel_ids.observe(rel_id)
        record = RelationshipRecord(rel_id=rel_id, src=src, dst=dst, ghost=ghost)
        if src_local:
            record = self._link_into_chain(record, src)
        if dst_local:
            record = self._link_into_chain(record, dst)
        self.relationships.write(record)
        for key, value in (properties or {}).items():
            self.set_relationship_property(rel_id, key, value)
        self._notify_rel(rel_id)
        return self.relationships.read(rel_id)

    def _link_into_chain(
        self, record: RelationshipRecord, node_id: int
    ) -> RelationshipRecord:
        """Head-insert ``record`` into ``node_id``'s chain (record not yet
        written; the updated record is returned for the caller to write)."""
        node = self.nodes.read(node_id)
        old_first = node.first_rel
        record = record.with_next_for(node_id, old_first)
        record = record.with_prev_for(node_id, NULL_REF)
        if old_first != NULL_REF:
            first = self.relationships.read(old_first)
            self.relationships.write(first.with_prev_for(node_id, record.rel_id))
        self.nodes.write(node.with_first_rel(record.rel_id))
        return record

    def _unlink_from_chain(self, record: RelationshipRecord, node_id: int) -> None:
        prev_id = record.prev_for(node_id)
        next_id = record.next_for(node_id)
        if prev_id == NULL_REF:
            node = self.nodes.read(node_id)
            self.nodes.write(node.with_first_rel(next_id))
        else:
            prev = self.relationships.read(prev_id)
            self.relationships.write(prev.with_next_for(node_id, next_id))
        if next_id != NULL_REF:
            nxt = self.relationships.read(next_id)
            self.relationships.write(nxt.with_prev_for(node_id, prev_id))

    def has_relationship(self, rel_id: int) -> bool:
        return rel_id in self.relationships

    def chain_contains(self, node_id: int, rel_id: int) -> bool:
        """True when ``rel_id`` is already linked into ``node_id``'s chain.

        Guards against double-linking when a record was created with both
        endpoints local (``create_relationship`` links every local
        endpoint) and a later path would attach one of them again.
        """
        return any(
            entry.rel_id == rel_id
            for entry in self.neighbor_entries(
                node_id, include_unavailable=True
            )
        )

    def relationship(self, rel_id: int) -> RelationshipRecord:
        return self.relationships.read(rel_id)

    def delete_relationship(self, rel_id: int) -> None:
        """Unlink from all local chains, drop properties, tombstone."""
        record = self.relationships.read(rel_id)
        if record.src in self.nodes:
            self._unlink_from_chain(record, record.src)
        if record.dst in self.nodes:
            self._unlink_from_chain(record, record.dst)
        self._delete_property_chain(record.first_prop)
        self.relationships.delete(rel_id)
        self._notify_rel_removed(rel_id)

    def attach_endpoint(self, rel_id: int, node_id: int) -> None:
        """Link an existing relationship record into a local node's chain.

        Used by the migration copy step when the record's counterpart was
        already present here (the other endpoint is local) and a migrating
        endpoint arrives.
        """
        record = self.relationships.read(rel_id)
        if node_id not in self.nodes:
            raise StorageError(f"node {node_id} is not local")
        record = self._link_into_chain(record, node_id)
        self.relationships.write(record)

    def detach_endpoint(self, rel_id: int, node_id: int) -> None:
        """Unlink a relationship from one endpoint's chain, NULLing that
        side's pointers.  The record survives for the other (local)
        endpoint — this is how a local edge becomes a cross-partition one
        when one endpoint migrates away."""
        record = self.relationships.read(rel_id)
        self._unlink_from_chain(record, node_id)
        record = record.with_prev_for(node_id, NULL_REF)
        record = record.with_next_for(node_id, NULL_REF)
        self.relationships.write(record)

    def remove_node_record(self, node_id: int) -> None:
        """Migration remove step: drop a node whose chain is already empty."""
        record = self.nodes.read(node_id)
        if record.first_rel != NULL_REF:
            raise StorageError(
                f"node {node_id} still has relationships; detach them first"
            )
        self._delete_property_chain(record.first_prop)
        self.nodes.delete(node_id)
        self._notify_node_removed(node_id)

    def set_ghost(self, rel_id: int, ghost: bool) -> None:
        """Flip a record between primary and ghost (migration merge step).

        Downgrading to ghost drops the property chain, since ghosts hold
        no property information.
        """
        record = self.relationships.read(rel_id)
        if ghost and record.first_prop != NULL_REF:
            self._delete_property_chain(record.first_prop)
            record = record.with_first_prop(NULL_REF)
        self.relationships.write(record.with_ghost(ghost))
        self._notify_rel(rel_id)

    # ==================================================================
    # Adjacency (fully local thanks to ghost records)
    # ==================================================================
    def neighbor_entries(
        self, node_id: int, include_unavailable: bool = False
    ) -> Iterator[NeighborEntry]:
        """Walk ``node_id``'s relationship chain; no remote access needed.

        ``include_unavailable`` is for internal maintenance (the migration
        remove step walks chains of nodes it already marked unavailable).
        """
        if include_unavailable:
            record = self.nodes.read(node_id)
        else:
            record = self._require_available(node_id)
        rel_id = record.first_rel
        steps = 0
        limit = len(self.relationships) + 1
        while rel_id != NULL_REF:
            steps += 1
            if steps > limit:
                raise StorageError(f"cyclic relationship chain at node {node_id}")
            rel = self.relationships.read(rel_id)
            yield NeighborEntry(
                neighbor=rel.other_endpoint(node_id),
                rel_id=rel_id,
                ghost=rel.ghost,
            )
            rel_id = rel.next_for(node_id)

    def neighbors(self, node_id: int) -> List[int]:
        return [entry.neighbor for entry in self.neighbor_entries(node_id)]

    def degree(self, node_id: int) -> int:
        return sum(1 for _ in self.neighbor_entries(node_id))

    # ==================================================================
    # Properties
    # ==================================================================
    def allocate_prop_id(self) -> int:
        return self._prop_ids.allocate()

    def set_node_property(self, node_id: int, key: str, value: Any) -> None:
        node = self._require_available(node_id)
        new_first = self._set_property(node.first_prop, node_id, key, value)
        if new_first != node.first_prop:
            self.nodes.write(node.with_first_prop(new_first))
        self._notify_node(node_id)

    def get_node_property(self, node_id: int, key: str, default: Any = None) -> Any:
        node = self._require_available(node_id)
        return self._get_property(node.first_prop, key, default)

    def node_properties(self, node_id: int) -> Dict[str, Any]:
        node = self._require_available(node_id)
        return self._collect_properties(node.first_prop)

    def remove_node_property(self, node_id: int, key: str) -> bool:
        node = self._require_available(node_id)
        new_first, removed = self._remove_property(node.first_prop, key)
        if new_first != node.first_prop:
            self.nodes.write(node.with_first_prop(new_first))
        if removed:
            self._notify_node(node_id)
        return removed

    def set_relationship_property(self, rel_id: int, key: str, value: Any) -> None:
        rel = self.relationships.read(rel_id)
        if rel.ghost:
            raise StorageError(
                f"relationship {rel_id} is a ghost and cannot hold properties"
            )
        new_first = self._set_property(rel.first_prop, rel_id, key, value)
        if new_first != rel.first_prop:
            self.relationships.write(rel.with_first_prop(new_first))
        self._notify_rel(rel_id)

    def get_relationship_property(
        self, rel_id: int, key: str, default: Any = None
    ) -> Any:
        rel = self.relationships.read(rel_id)
        return self._get_property(rel.first_prop, key, default)

    def relationship_properties(self, rel_id: int) -> Dict[str, Any]:
        rel = self.relationships.read(rel_id)
        return self._collect_properties(rel.first_prop)

    def remove_relationship_property(self, rel_id: int, key: str) -> bool:
        rel = self.relationships.read(rel_id)
        new_first, removed = self._remove_property(rel.first_prop, key)
        if new_first != rel.first_prop:
            self.relationships.write(rel.with_first_prop(new_first))
        if removed:
            self._notify_rel(rel_id)
        return removed

    # -- property chain helpers ----------------------------------------
    def _set_property(self, first_prop: int, owner: int, key: str, value: Any) -> int:
        """Update-or-insert into a property chain; returns the chain head."""
        prop_id = first_prop
        while prop_id != NULL_REF:
            record = self.properties.read(prop_id)
            if self.properties.key_of(record) == key:
                self.properties.update_value(record, value)
                return first_prop
            prop_id = record.next_prop
        new_id = self._prop_ids.allocate()
        self.properties.create(new_id, owner, key, value, next_prop=first_prop)
        return new_id

    def _get_property(self, first_prop: int, key: str, default: Any) -> Any:
        prop_id = first_prop
        while prop_id != NULL_REF:
            record = self.properties.read(prop_id)
            if self.properties.key_of(record) == key:
                return self.properties.value_of(record)
            prop_id = record.next_prop
        return default

    def _collect_properties(self, first_prop: int) -> Dict[str, Any]:
        collected: Dict[str, Any] = {}
        prop_id = first_prop
        while prop_id != NULL_REF:
            record = self.properties.read(prop_id)
            collected[self.properties.key_of(record)] = self.properties.value_of(
                record
            )
            prop_id = record.next_prop
        return collected

    def _remove_property(self, first_prop: int, key: str) -> Tuple[int, bool]:
        """Unlink+delete the record holding ``key``; returns (new head, found)."""
        prev: Optional[Any] = None
        prop_id = first_prop
        while prop_id != NULL_REF:
            record = self.properties.read(prop_id)
            if self.properties.key_of(record) == key:
                if prev is None:
                    new_first = record.next_prop
                else:
                    self.properties.write(prev.with_next_prop(record.next_prop))
                    new_first = first_prop
                self.properties.delete(prop_id)
                return new_first, True
            prev = record
            prop_id = record.next_prop
        return first_prop, False

    def _delete_property_chain(self, first_prop: int) -> None:
        prop_id = first_prop
        while prop_id != NULL_REF:
            record = self.properties.read(prop_id)
            next_prop = record.next_prop
            self.properties.delete(prop_id)
            prop_id = next_prop

    # ==================================================================
    # Migration payloads (used by the cluster's two-step protocol)
    # ==================================================================
    def export_node(self, node_id: int) -> Dict[str, Any]:
        """Everything the copy step must ship for one node."""
        record = self.nodes.read(node_id)
        relationships = []
        for entry in self.neighbor_entries(node_id):
            rel = self.relationships.read(entry.rel_id)
            relationships.append(
                {
                    "rel_id": rel.rel_id,
                    "src": rel.src,
                    "dst": rel.dst,
                    "ghost": rel.ghost,
                    "properties": (
                        {} if rel.ghost else self.relationship_properties(rel.rel_id)
                    ),
                }
            )
        return {
            "node": {
                "node_id": node_id,
                "weight": record.weight,
            },
            "properties": self.node_properties(node_id),
            "relationships": relationships,
        }

    def import_node(self, payload: Dict[str, Any]) -> None:
        """Copy-step insert: node + properties (relationships are merged
        separately because ghost/primary roles depend on the catalog)."""
        node = payload["node"]
        self.create_node(
            node["node_id"],
            weight=node["weight"],
            properties=payload["properties"],
        )

    # ==================================================================
    # Logical images (durability journal / recovery fidelity)
    # ==================================================================
    def node_image(self, node_id: int) -> Dict[str, Any]:
        """Pointer-free logical content of one node, availability included.

        Unlike :meth:`node_properties` this never raises for unavailable
        nodes — the journal must capture mid-migration states too.
        """
        record = self.nodes.read(node_id)
        return {
            "weight": record.weight,
            "available": record.available,
            "properties": self._collect_properties(record.first_prop),
        }

    def relationship_image(self, rel_id: int) -> Dict[str, Any]:
        """Pointer-free logical content of one relationship record."""
        record = self.relationships.read(rel_id)
        return {
            "src": record.src,
            "dst": record.dst,
            "ghost": record.ghost,
            "properties": (
                {} if record.ghost else self._collect_properties(record.first_prop)
            ),
        }

    # ==================================================================
    # ID allocator control (membership changes / recovery)
    # ==================================================================
    def next_id_bound(self) -> int:
        """Smallest id strictly greater than anything this store has
        allocated or observed, across both allocators."""
        return max(self._rel_ids.peek(), self._prop_ids.peek())

    def rebase_ids(self, num_stripes: int, floor: int) -> None:
        """Re-stripe both allocators for a new server count.

        Every id minted after the rebase is strictly greater than
        ``floor`` (no collision with history) and congruent to this
        server's stripe mod ``num_stripes`` (no collision with peers) —
        the "generation" jump that makes server join safe.
        """
        start = floor // num_stripes + 1
        self._rel_ids = IdAllocator(
            stripe=self.server_id, num_stripes=num_stripes, start=start
        )
        self._prop_ids = IdAllocator(
            stripe=self.server_id, num_stripes=num_stripes, start=start
        )

    def set_allocator_state(
        self, num_stripes: int, rel_counter: int, prop_counter: int
    ) -> None:
        """Restore exact allocator positions (WAL recovery rebuild)."""
        self._rel_ids = IdAllocator(
            stripe=self.server_id, num_stripes=num_stripes, start=rel_counter
        )
        self._prop_ids = IdAllocator(
            stripe=self.server_id, num_stripes=num_stripes, start=prop_counter
        )

    def allocator_state(self) -> Dict[str, int]:
        return {
            "num_stripes": self._rel_ids.num_stripes,
            "rel_counter": self._rel_ids.allocated_count,
            "prop_counter": self._prop_ids.allocated_count,
        }

    # ==================================================================
    # Stats / persistence
    # ==================================================================
    def stats(self) -> StoreStats:
        ghosts = sum(1 for record in self.relationships.records() if record.ghost)
        return StoreStats(
            num_nodes=len(self.nodes),
            num_relationships=len(self.relationships),
            num_ghost_relationships=ghosts,
            num_properties=len(self.properties),
            bytes_nodes=self.nodes.size_bytes,
            bytes_relationships=self.relationships.size_bytes,
            bytes_properties=self.properties.size_bytes,
        )

    _META_FILE = "meta.json"

    def save(self, directory: str) -> None:
        """Persist all stores plus allocator state into a directory."""
        os.makedirs(directory, exist_ok=True)
        self.nodes.save(os.path.join(directory, "nodes.store"))
        self.relationships.save(os.path.join(directory, "relationships.store"))
        self.properties.save(
            os.path.join(directory, "properties.store"),
            os.path.join(directory, "dynamic.store"),
        )
        meta = {
            "server_id": self.server_id,
            "num_servers": self._rel_ids.num_stripes,
            "rel_counter": self._rel_ids.allocated_count,
            "prop_counter": self._prop_ids.allocated_count,
        }
        with open(os.path.join(directory, self._META_FILE), "w") as handle:
            json.dump(meta, handle)

    @classmethod
    def load(cls, directory: str) -> "GraphStore":
        with open(os.path.join(directory, cls._META_FILE)) as handle:
            meta = json.load(handle)
        store = cls.__new__(cls)
        store.server_id = meta["server_id"]
        store.nodes = NodeStore.load(os.path.join(directory, "nodes.store"))
        store.relationships = RelationshipStore.load(
            os.path.join(directory, "relationships.store")
        )
        store.properties = PropertyStore.load(
            os.path.join(directory, "properties.store"),
            os.path.join(directory, "dynamic.store"),
        )
        store._rel_ids = IdAllocator(
            stripe=meta["server_id"],
            num_stripes=meta["num_servers"],
            start=meta["rel_counter"],
        )
        store._prop_ids = IdAllocator(
            stripe=meta["server_id"],
            num_stripes=meta["num_servers"],
            start=meta["prop_counter"],
        )
        store.observer = None
        return store

"""Fixed-size record stores and Neo4j-style dynamic (chained) records.

Two storage primitives live here:

* :class:`FixedRecordStore` — struct-packed, fixed-size records placed in
  page slots.  A B+Tree resolves record ID -> slot because Hermes cannot
  rely on contiguous ID allocation once records migrate between servers
  (paper Section 4); freed slots are recycled.
* :class:`DynamicStore` — variable-length blobs split across fixed-size
  chained chunks, exactly like Neo4j's dynamic string/array stores; the
  property store keeps its keys and values here.
"""

from __future__ import annotations

import abc
import struct
from typing import Any, Iterator, List, Optional, Tuple

from repro.exceptions import (
    PageError,
    RecordDeletedError,
    RecordNotFoundError,
    StorageError,
)
from repro.storage.btree import BPlusTree
from repro.storage.pages import PagedFile

#: Null pointer in record link fields (chains end here).
NULL_REF = -1


class RecordCodec(abc.ABC):
    """Packs one record type to/from its fixed-size byte layout."""

    #: struct format of the record (little-endian, no padding)
    FORMAT: str = ""

    @property
    def record_size(self) -> int:
        return struct.calcsize(self.FORMAT)

    @abc.abstractmethod
    def pack(self, record: Any) -> bytes:
        """Record object -> exactly ``record_size`` bytes."""

    @abc.abstractmethod
    def unpack(self, payload: bytes) -> Any:
        """Bytes -> record object."""

    @abc.abstractmethod
    def header(self, payload: bytes) -> Tuple[bool, int]:
        """Cheap peek: ``(in_use, record_id)`` — used to rebuild indexes."""


class FixedRecordStore:
    """Slotted fixed-size record storage with a B+Tree ID index."""

    def __init__(
        self,
        codec: RecordCodec,
        paged_file: Optional[PagedFile] = None,
        btree_order: int = 64,
    ):
        self.codec = codec
        self.pages = paged_file or PagedFile()
        if self.codec.record_size > self.pages.page_size:
            raise PageError(
                f"record size {self.codec.record_size} exceeds page size "
                f"{self.pages.page_size}"
            )
        self.slots_per_page = self.pages.page_size // self.codec.record_size
        self._index = BPlusTree(order=btree_order)
        self._free_slots: List[int] = []
        self._next_slot = self.pages.num_pages * self.slots_per_page
        if self.pages.num_pages:
            self._rebuild_index()

    # ------------------------------------------------------------------
    def _slot_location(self, slot: int) -> Tuple[int, int]:
        page, slot_in_page = divmod(slot, self.slots_per_page)
        return page, slot_in_page * self.codec.record_size

    def _allocate_slot(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        slot = self._next_slot
        self._next_slot += 1
        if slot // self.slots_per_page >= self.pages.num_pages:
            self.pages.allocate_page()
        return slot

    # ------------------------------------------------------------------
    def write(self, record_id: int, record: Any) -> None:
        """Insert or update the record stored under ``record_id``."""
        payload = self.codec.pack(record)
        slot = self._index.get(record_id)
        if slot is None:
            slot = self._allocate_slot()
            self._index.insert(record_id, slot)
        page, offset = self._slot_location(slot)
        self.pages.write(page, offset, payload)

    def read(self, record_id: int) -> Any:
        slot = self._index.get(record_id)
        if slot is None:
            raise RecordNotFoundError(f"record {record_id} not found")
        page, offset = self._slot_location(slot)
        payload = self.pages.read(page, offset, self.codec.record_size)
        in_use, _ = self.codec.header(payload)
        if not in_use:
            raise RecordDeletedError(f"record {record_id} is deleted")
        return self.codec.unpack(payload)

    def delete(self, record_id: int) -> None:
        """Tombstone the record and recycle its slot."""
        slot = self._index.get(record_id)
        if slot is None:
            raise RecordNotFoundError(f"record {record_id} not found")
        page, offset = self._slot_location(slot)
        self.pages.write(page, offset, bytes(self.codec.record_size))
        self._index.delete(record_id)
        self._free_slots.append(slot)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def ids(self) -> Iterator[int]:
        return self._index.keys()

    def records(self) -> Iterator[Any]:
        for record_id in list(self._index.keys()):
            yield self.read(record_id)

    def max_id(self) -> Optional[int]:
        return self._index.max_key()

    # ------------------------------------------------------------------
    def _rebuild_index(self) -> None:
        """Scan pages after reopening: index in-use slots, free the rest."""
        self._index = BPlusTree(order=self._index.order)
        self._free_slots = []
        total_slots = self.pages.num_pages * self.slots_per_page
        self._next_slot = total_slots
        for slot in range(total_slots):
            page, offset = self._slot_location(slot)
            payload = self.pages.read(page, offset, self.codec.record_size)
            in_use, record_id = self.codec.header(payload)
            if in_use:
                if record_id in self._index:
                    raise StorageError(
                        f"duplicate record id {record_id} found during scan"
                    )
                self._index.insert(record_id, slot)
            else:
                self._free_slots.append(slot)

    def save(self, path: str) -> None:
        self.pages.save(path)

    @classmethod
    def load(cls, path: str, codec: RecordCodec) -> "FixedRecordStore":
        return cls(codec, paged_file=PagedFile.load(path))


# ----------------------------------------------------------------------
# Dynamic (chained-chunk) storage
# ----------------------------------------------------------------------
_CHUNK_HEADER = struct.Struct("<BqqH")  # flags, chunk_id, next_chunk, length
_CHUNK_SIZE = 64
_CHUNK_PAYLOAD = _CHUNK_SIZE - _CHUNK_HEADER.size
_FLAG_IN_USE = 0x1


class _ChunkCodec(RecordCodec):
    FORMAT = f"<BqqH{_CHUNK_PAYLOAD}s"

    def pack(self, record: Tuple[bool, int, int, bytes]) -> bytes:
        in_use, chunk_id, next_chunk, payload = record
        if len(payload) > _CHUNK_PAYLOAD:
            raise StorageError("chunk payload too large")
        flags = _FLAG_IN_USE if in_use else 0
        return struct.pack(
            self.FORMAT,
            flags,
            chunk_id,
            next_chunk,
            len(payload),
            payload.ljust(_CHUNK_PAYLOAD, b"\0"),
        )

    def unpack(self, payload: bytes) -> Tuple[bool, int, int, bytes]:
        flags, chunk_id, next_chunk, length, data = struct.unpack(
            self.FORMAT, payload
        )
        return bool(flags & _FLAG_IN_USE), chunk_id, next_chunk, data[:length]

    def header(self, payload: bytes) -> Tuple[bool, int]:
        flags, chunk_id, _, _ = _CHUNK_HEADER.unpack_from(payload)
        return bool(flags & _FLAG_IN_USE), chunk_id


class DynamicStore:
    """Variable-length blob storage over chained fixed-size chunks."""

    def __init__(self, paged_file: Optional[PagedFile] = None):
        self._store = FixedRecordStore(_ChunkCodec(), paged_file=paged_file)
        max_existing = self._store.max_id()
        self._next_chunk_id = 0 if max_existing is None else max_existing + 1

    def store(self, blob: bytes) -> int:
        """Write a blob; returns the head chunk ID."""
        chunks = [
            blob[offset : offset + _CHUNK_PAYLOAD]
            for offset in range(0, len(blob), _CHUNK_PAYLOAD)
        ] or [b""]
        head = self._next_chunk_id
        self._next_chunk_id += len(chunks)
        for index, payload in enumerate(chunks):
            chunk_id = head + index
            next_chunk = chunk_id + 1 if index + 1 < len(chunks) else NULL_REF
            self._store.write(chunk_id, (True, chunk_id, next_chunk, payload))
        return head

    def fetch(self, head: int) -> bytes:
        """Read the blob whose chain starts at ``head``."""
        parts: List[bytes] = []
        chunk_id = head
        seen = set()
        while chunk_id != NULL_REF:
            if chunk_id in seen:
                raise StorageError(f"cyclic chunk chain at {chunk_id}")
            seen.add(chunk_id)
            _, _, next_chunk, payload = self._store.read(chunk_id)
            parts.append(payload)
            chunk_id = next_chunk
        return b"".join(parts)

    def free(self, head: int) -> None:
        """Delete the whole chain starting at ``head``."""
        chunk_id = head
        while chunk_id != NULL_REF:
            _, _, next_chunk, _ = self._store.read(chunk_id)
            self._store.delete(chunk_id)
            chunk_id = next_chunk

    @property
    def num_chunks(self) -> int:
        return len(self._store)

    def save(self, path: str) -> None:
        self._store.save(path)

    @classmethod
    def load(cls, path: str) -> "DynamicStore":
        store = cls.__new__(cls)
        store._store = FixedRecordStore.load(path, _ChunkCodec())
        max_existing = store._store.max_id()
        store._next_chunk_id = 0 if max_existing is None else max_existing + 1
        return store

"""In-memory B+Tree mapping integer keys to arbitrary values.

Hermes replaced Neo4j's offset-based record addressing with "a tree-based
indexing scheme (B+Tree) rather than an offset-based indexing scheme since
record IDs can no longer be allocated in small increments.  In addition,
data migration would make offset based indexing impossible" (Section 4).
Every record store in this engine resolves record ID -> storage slot
through one of these trees.

The implementation is a textbook B+Tree: values only in leaves, leaves
doubly linked for range scans, deletion with borrow-from-sibling and merge
so the occupancy invariants hold after any operation sequence (verified by
property-based tests via :meth:`check_invariants`).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.exceptions import StorageError


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "prev_leaf")

    def __init__(self, leaf: bool):
        self.keys: List[int] = []
        if leaf:
            self.values: List[Any] = []
            self.children = None
            self.next_leaf: Optional[_Node] = None
            self.prev_leaf: Optional[_Node] = None
        else:
            self.values = None
            self.children: List[_Node] = []
            self.next_leaf = None
            self.prev_leaf = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree:
    """B+Tree with configurable branching ``order`` (max children)."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise StorageError(f"order must be >= 4, got {order}")
        self.order = order
        self._root = _Node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: int) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: int, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insert / update
    # ------------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        """Insert a key or overwrite its value if present."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._size += 1
        if len(leaf.keys) >= self.order:
            self._split_up(leaf)

    def _split_up(self, node: _Node) -> None:
        """Split an over-full node, propagating to the root if needed."""
        path = self._path_to(node)
        while len(node.keys) >= self.order:
            mid = len(node.keys) // 2
            if node.is_leaf:
                right = _Node(leaf=True)
                right.keys = node.keys[mid:]
                right.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                right.next_leaf = node.next_leaf
                if right.next_leaf is not None:
                    right.next_leaf.prev_leaf = right
                right.prev_leaf = node
                node.next_leaf = right
                separator = right.keys[0]
            else:
                right = _Node(leaf=False)
                separator = node.keys[mid]
                right.keys = node.keys[mid + 1 :]
                right.children = node.children[mid + 1 :]
                node.keys = node.keys[:mid]
                node.children = node.children[: mid + 1]
            if path:
                parent = path.pop()
                index = bisect.bisect_right(parent.keys, separator)
                parent.keys.insert(index, separator)
                parent.children.insert(index + 1, right)
                node = parent
            else:
                new_root = _Node(leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, right]
                self._root = new_root
                return

    def _path_to(self, target: _Node) -> List[_Node]:
        """Root-to-parent path for ``target`` (excludes target itself)."""
        path: List[_Node] = []
        node = self._root
        if node is target:
            return path
        key = target.keys[0] if target.keys else None
        while not node.is_leaf:
            path.append(node)
            if key is None:
                # Empty target can only be the root mid-delete; not expected.
                raise StorageError("cannot locate empty interior node")
            index = bisect.bisect_right(node.keys, key)
            child = node.children[index]
            if child is target:
                return path
            node = child
        raise StorageError("node not found on its key path")

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: int) -> Any:
        """Remove a key, returning its value; raises KeyError if absent."""
        value = self._delete(self._root, key)
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return value

    def _delete(self, node: _Node, key: int) -> Any:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise KeyError(key)
            node.keys.pop(index)
            self._size -= 1
            return node.values.pop(index)
        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        value = self._delete(child, key)
        if self._underfull(child):
            self._rebalance(node, index)
        return value

    def _min_keys(self, node: _Node) -> int:
        if node is self._root:
            return 1 if node.is_leaf else 1
        if node.is_leaf:
            return (self.order - 1) // 2
        return (self.order - 1) // 2

    def _underfull(self, node: _Node) -> bool:
        if node is self._root:
            return False
        return len(node.keys) < self._min_keys(node)

    def _rebalance(self, parent: _Node, index: int) -> None:
        """Fix parent's underfull child at ``index`` by borrow or merge."""
        child = parent.children[index]
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None

        if left is not None and len(left.keys) > self._min_keys(left):
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and len(right.keys) > self._min_keys(right):
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        else:
            self._merge(parent, index, child, right)

    @staticmethod
    def _borrow_from_left(parent: _Node, index: int, left: _Node, child: _Node) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    @staticmethod
    def _borrow_from_right(parent: _Node, index: int, child: _Node, right: _Node) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    @staticmethod
    def _merge(parent: _Node, left_index: int, left: _Node, right: _Node) -> None:
        """Fold ``right`` into ``left``; drop the separator at left_index."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
            if right.next_leaf is not None:
                right.next_leaf.prev_leaf = left
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _first_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(self) -> Iterator[Tuple[int, Any]]:
        """All (key, value) pairs in ascending key order."""
        leaf: Optional[_Node] = self._first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    def range(self, low: int, high: int) -> Iterator[Tuple[int, Any]]:
        """(key, value) pairs with ``low <= key <= high``, ascending."""
        leaf: Optional[_Node] = self._find_leaf(low)
        start = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if key > high:
                    return
                yield key, leaf.values[index]
            leaf = leaf.next_leaf
            start = 0

    def max_key(self) -> Optional[int]:
        """Largest key, or None when empty (O(height))."""
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    # ------------------------------------------------------------------
    # Invariant checking (used by property-based tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise StorageError if any B+Tree invariant is violated."""
        leaf_depths = set()
        self._check_node(self._root, None, None, 0, leaf_depths)
        if len(leaf_depths) > 1:
            raise StorageError(f"leaves at multiple depths: {leaf_depths}")
        # Leaf chain must enumerate exactly the tree's keys, sorted.
        chained = [key for key, _ in self.items()]
        if chained != sorted(chained):
            raise StorageError("leaf chain out of order")
        if len(chained) != self._size:
            raise StorageError(
                f"size mismatch: chained {len(chained)} vs recorded {self._size}"
            )

    def _check_node(
        self,
        node: _Node,
        low: Optional[int],
        high: Optional[int],
        depth: int,
        leaf_depths: set,
    ) -> None:
        if node.keys != sorted(node.keys):
            raise StorageError("unsorted keys in node")
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError(f"key {key} below bound {low}")
            if high is not None and key >= high:
                raise StorageError(f"key {key} above bound {high}")
        if node is not self._root and len(node.keys) < self._min_keys(node):
            raise StorageError("underfull node")
        if len(node.keys) >= self.order:
            raise StorageError("overfull node")
        if node.is_leaf:
            leaf_depths.add(depth)
            return
        if len(node.children) != len(node.keys) + 1:
            raise StorageError("child/key count mismatch")
        bounds = [low] + list(node.keys) + [high]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1], depth + 1, leaf_depths)

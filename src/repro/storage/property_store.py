"""The property store: fixed index records + dynamic key/value blobs.

Neo4j's "two layer architecture where a fixed size record store is used to
store the offsets and a dynamic size record store is used to hold the
properties" (Section 4).  Each property record points at two chains in the
dynamic store (key, value) and links to the owner's next property record.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Any, Iterator, Optional, Tuple

from repro.storage.pages import PagedFile
from repro.storage.records import NULL_REF, DynamicStore, FixedRecordStore, RecordCodec
from repro.storage.values import decode_value, encode_value

_FLAG_IN_USE = 0x1


@dataclass(frozen=True)
class PropertyRecord:
    """One fixed-size property index record."""

    prop_id: int
    owner_id: int
    next_prop: int = NULL_REF
    key_blob: int = NULL_REF
    value_blob: int = NULL_REF

    def with_next_prop(self, prop_id: int) -> "PropertyRecord":
        return replace(self, next_prop=prop_id)

    def with_value_blob(self, blob: int) -> "PropertyRecord":
        return replace(self, value_blob=blob)


class PropertyCodec(RecordCodec):
    FORMAT = "<B5q"

    def pack(self, record: PropertyRecord) -> bytes:
        return struct.pack(
            self.FORMAT,
            _FLAG_IN_USE,
            record.prop_id,
            record.owner_id,
            record.next_prop,
            record.key_blob,
            record.value_blob,
        )

    def unpack(self, payload: bytes) -> PropertyRecord:
        _, prop_id, owner_id, next_prop, key_blob, value_blob = struct.unpack(
            self.FORMAT, payload
        )
        return PropertyRecord(
            prop_id=prop_id,
            owner_id=owner_id,
            next_prop=next_prop,
            key_blob=key_blob,
            value_blob=value_blob,
        )

    def header(self, payload: bytes) -> Tuple[bool, int]:
        flags, prop_id = struct.unpack_from("<Bq", payload)
        return bool(flags & _FLAG_IN_USE), prop_id


class PropertyStore:
    """Property index records plus their dynamic key/value storage."""

    def __init__(
        self,
        paged_file: Optional[PagedFile] = None,
        dynamic_file: Optional[PagedFile] = None,
    ):
        self._store = FixedRecordStore(PropertyCodec(), paged_file=paged_file)
        self._dynamic = DynamicStore(paged_file=dynamic_file)

    # ------------------------------------------------------------------
    def create(
        self, prop_id: int, owner_id: int, key: str, value: Any, next_prop: int = NULL_REF
    ) -> PropertyRecord:
        """Materialize a property: blobs into the dynamic store + index record."""
        record = PropertyRecord(
            prop_id=prop_id,
            owner_id=owner_id,
            next_prop=next_prop,
            key_blob=self._dynamic.store(key.encode("utf-8")),
            value_blob=self._dynamic.store(encode_value(value)),
        )
        self._store.write(record.prop_id, record)
        return record

    def write(self, record: PropertyRecord) -> None:
        self._store.write(record.prop_id, record)

    def read(self, prop_id: int) -> PropertyRecord:
        return self._store.read(prop_id)

    def key_of(self, record: PropertyRecord) -> str:
        return self._dynamic.fetch(record.key_blob).decode("utf-8")

    def value_of(self, record: PropertyRecord) -> Any:
        return decode_value(self._dynamic.fetch(record.value_blob))

    def update_value(self, record: PropertyRecord, value: Any) -> PropertyRecord:
        """Replace a property's value blob in place."""
        self._dynamic.free(record.value_blob)
        updated = record.with_value_blob(self._dynamic.store(encode_value(value)))
        self._store.write(updated.prop_id, updated)
        return updated

    def delete(self, prop_id: int) -> None:
        """Remove the index record and free both blobs."""
        record = self._store.read(prop_id)
        if record.key_blob != NULL_REF:
            self._dynamic.free(record.key_blob)
        if record.value_blob != NULL_REF:
            self._dynamic.free(record.value_blob)
        self._store.delete(prop_id)

    # ------------------------------------------------------------------
    def __contains__(self, prop_id: int) -> bool:
        return prop_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def ids(self) -> Iterator[int]:
        return self._store.ids()

    def max_id(self) -> Optional[int]:
        return self._store.max_id()

    @property
    def size_bytes(self) -> int:
        return self._store.pages.size_bytes + self._dynamic._store.pages.size_bytes

    def save(self, index_path: str, dynamic_path: str) -> None:
        self._store.save(index_path)
        self._dynamic.save(dynamic_path)

    @classmethod
    def load(cls, index_path: str, dynamic_path: str) -> "PropertyStore":
        store = cls.__new__(cls)
        store._store = FixedRecordStore.load(index_path, PropertyCodec())
        store._dynamic = DynamicStore.load(dynamic_path)
        return store

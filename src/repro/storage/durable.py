"""DurableRecordStore: WAL-protected transactional record storage.

Wraps a :class:`~repro.storage.records.FixedRecordStore` with the
write-ahead log so that record mutations are atomic and durable:

* every write/delete inside a transaction first logs before/after images;
* COMMIT flushes the log (the durability point) — the page writes
  themselves may race a crash, because recovery replays after-images;
* on reopen after a crash, :func:`repro.storage.wal.recover` redoes
  committed work and rolls back losers.

This is the ACID substrate the paper inherits from Neo4j's persistence
engine, demonstrated at the record-store level (the cluster simulation
uses the in-memory undo path for speed; the durable path is exercised by
its own test suite and the storage-engine example).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

from repro.exceptions import StorageError, TransactionAbortedError
from repro.storage.records import FixedRecordStore, RecordCodec
from repro.storage.wal import LogKind, LogRecord, RecoveryReport, WriteAheadLog, recover


class DurableTransaction:
    """Handle for a WAL-protected transaction."""

    def __init__(self, store: "DurableRecordStore", txn_id: int):
        self._store = store
        self.txn_id = txn_id
        self.active = True

    def _require_active(self) -> None:
        if not self.active:
            raise TransactionAbortedError(
                f"durable transaction {self.txn_id} is finished"
            )

    def write(self, record_id: int, record: Any) -> None:
        self._require_active()
        self._store._logged_write(self, record_id, record)

    def delete(self, record_id: int) -> None:
        self._require_active()
        self._store._logged_delete(self, record_id)

    def commit(self) -> None:
        self._require_active()
        self._store._commit(self)
        self.active = False

    def abort(self) -> None:
        self._require_active()
        self._store._abort(self)
        self.active = False

    def __enter__(self) -> "DurableTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.active:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class DurableRecordStore:
    """A FixedRecordStore with WAL-backed atomicity and crash recovery."""

    def __init__(
        self,
        codec: RecordCodec,
        wal: Optional[WriteAheadLog] = None,
        store: Optional[FixedRecordStore] = None,
    ):
        self.codec = codec
        # Explicit None checks: both objects define __len__, so an empty
        # store/log is falsy and `or` would silently discard it.
        self.store = store if store is not None else FixedRecordStore(codec)
        self.wal = wal if wal is not None else WriteAheadLog()
        self._txn_ids = itertools.count(1)
        self.last_recovery: Optional[RecoveryReport] = None
        #: packed record images as of the last checkpoint — the state the
        #: "disk pages" are guaranteed to hold after a crash (the WAL rule:
        #: no page reaches disk ahead of its log records; our simulation
        #: only persists pages at checkpoints)
        self._checkpoint_images = {
            record_id: codec.pack(self.store.read(record_id))
            for record_id in list(self.store.ids())
        }
        # Recovery on open: replay whatever the log says should be true.
        self.last_recovery = self._recover()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> DurableTransaction:
        txn = DurableTransaction(self, next(self._txn_ids))
        self.wal.append(LogRecord(kind=LogKind.BEGIN, txn_id=txn.txn_id))
        return txn

    def _image(self, record_id: int) -> bytes:
        """Current packed bytes of a record ('' when absent)."""
        if record_id not in self.store:
            return b""
        return self.codec.pack(self.store.read(record_id))

    def _logged_write(
        self, txn: DurableTransaction, record_id: int, record: Any
    ) -> None:
        after = self.codec.pack(record)
        self.wal.append(
            LogRecord(
                kind=LogKind.UPDATE,
                txn_id=txn.txn_id,
                record_id=record_id,
                before=self._image(record_id),
                after=after,
            )
        )
        self.store.write(record_id, record)

    def _logged_delete(self, txn: DurableTransaction, record_id: int) -> None:
        before = self._image(record_id)
        if not before:
            raise StorageError(f"record {record_id} does not exist")
        self.wal.append(
            LogRecord(
                kind=LogKind.UPDATE,
                txn_id=txn.txn_id,
                record_id=record_id,
                before=before,
                after=b"",
            )
        )
        self.store.delete(record_id)

    def _commit(self, txn: DurableTransaction) -> None:
        self.wal.append(LogRecord(kind=LogKind.COMMIT, txn_id=txn.txn_id))
        self.wal.flush()  # the durability point

    def _abort(self, txn: DurableTransaction) -> None:
        # Roll back in place using the log's before-images, logging each
        # reversal as a compensation update (ARIES CLR) so that recovery's
        # repeat-history pass reproduces the rollback too.
        updates = [
            record
            for record in self.wal.records()
            if record.kind is LogKind.UPDATE and record.txn_id == txn.txn_id
        ]
        for record in reversed(updates):
            self.wal.append(
                LogRecord(
                    kind=LogKind.UPDATE,
                    txn_id=txn.txn_id,
                    record_id=record.record_id,
                    before=self._image(record.record_id),
                    after=record.before,
                )
            )
            self._apply_image(record.record_id, record.before)
        self.wal.append(LogRecord(kind=LogKind.ABORT, txn_id=txn.txn_id))

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _apply_image(self, record_id: int, image: bytes) -> None:
        if not image:
            if record_id in self.store:
                self.store.delete(record_id)
            return
        self.store.write(record_id, self.codec.unpack(image))

    def _recover(self) -> RecoveryReport:
        report = recover(self.wal, self._apply_image)
        # Continue numbering after the highest txn id seen in the log.
        seen = [record.txn_id for record in self.wal.records()]
        if seen:
            self._txn_ids = itertools.count(max(seen) + 1)
        return report

    def simulate_crash_and_recover(
        self, keep_unflushed_bytes: int = 0
    ) -> RecoveryReport:
        """Test hook: crash, then run restart recovery.

        A crash loses the unflushed log tail and the page cache: the
        store reverts to its last-checkpoint disk state, and the durable
        log replays on top of it (repeat history + undo losers)."""
        self.wal.simulate_crash(keep_unflushed_bytes)
        # Rebuild with the same store class so injected backends (e.g. the
        # cluster journal's dict store) survive the crash simulation.
        self.store = self.store.__class__(self.codec)
        for record_id, image in self._checkpoint_images.items():
            self.store.write(record_id, self.codec.unpack(image))
        self.last_recovery = self._recover()
        return self.last_recovery

    def checkpoint(self) -> None:
        """Force pages to stable storage and truncate the log."""
        self.wal.flush()
        self._checkpoint_images = {
            record_id: self.codec.pack(self.store.read(record_id))
            for record_id in list(self.store.ids())
        }
        self.wal.truncate()

    # ------------------------------------------------------------------
    # Reads (no logging needed)
    # ------------------------------------------------------------------
    def read(self, record_id: int) -> Any:
        return self.store.read(record_id)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self.store

    def __len__(self) -> int:
        return len(self.store)

    def ids(self) -> Iterator[int]:
        return self.store.ids()

"""Monotonically increasing ID allocation (paper Section 4).

Neo4j combines fixed-size records with a monotonically increasing ID
generator so offsets are computable in O(1) and records pack tightly.
Hermes keeps the monotonic generator (new records always get the next,
highest ID — which is also why B+Tree insertions in Figure 10's analysis
always hit the last page) but drops offset addressing, since migration
moves records between servers.

Each server allocates from its own *stripe* of the ID space —
``server_id + i * num_servers`` — so distributed allocation never
collides without coordination.
"""

from __future__ import annotations

from repro.exceptions import StorageError


class IdAllocator:
    """Monotonic allocator over an optionally striped ID space."""

    def __init__(self, stripe: int = 0, num_stripes: int = 1, start: int = 0):
        if num_stripes < 1:
            raise StorageError(f"num_stripes must be >= 1, got {num_stripes}")
        if not 0 <= stripe < num_stripes:
            raise StorageError(
                f"stripe {stripe} out of range [0, {num_stripes})"
            )
        self.stripe = stripe
        self.num_stripes = num_stripes
        self._counter = max(0, start)

    def allocate(self) -> int:
        """Return the next ID; strictly increasing across calls."""
        allocated = self._counter * self.num_stripes + self.stripe
        self._counter += 1
        return allocated

    def peek(self) -> int:
        """The ID the next :meth:`allocate` call would return."""
        return self._counter * self.num_stripes + self.stripe

    def observe(self, external_id: int) -> None:
        """Advance past an externally produced ID (e.g. a migrated record).

        Guarantees that future allocations never collide with IDs created
        by other servers and later migrated here.
        """
        if external_id < 0:
            raise StorageError(f"IDs are non-negative, got {external_id}")
        needed = external_id // self.num_stripes + 1
        if needed > self._counter:
            self._counter = needed

    @property
    def allocated_count(self) -> int:
        return self._counter

"""Paged byte storage with optional on-disk persistence.

All record stores allocate fixed-size pages from a :class:`PagedFile`.
Pages live in memory (the cluster simulator's "disk"); :meth:`save` and
:meth:`load` persist them with a checksummed header so the crash-recovery
tests can reopen a store and verify integrity.
"""

from __future__ import annotations

import struct
import zlib
from typing import List

from repro.exceptions import PageError, StoreCorruptionError

#: File header: magic, format version, page size, page count.
_HEADER = struct.Struct("<4sIII")
_MAGIC = b"HRMS"
_VERSION = 1


class PagedFile:
    """A growable array of fixed-size pages."""

    DEFAULT_PAGE_SIZE = 4096

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise PageError(f"page size must be >= 64 bytes, got {page_size}")
        self.page_size = page_size
        self._pages: List[bytearray] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        return self.num_pages * self.page_size

    def allocate_page(self) -> int:
        """Append a zeroed page; returns its index."""
        self._pages.append(bytearray(self.page_size))
        return len(self._pages) - 1

    def _page(self, index: int) -> bytearray:
        if not 0 <= index < len(self._pages):
            raise PageError(f"page {index} out of range [0, {len(self._pages)})")
        return self._pages[index]

    def read(self, page: int, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` within one page."""
        data = self._page(page)
        if offset < 0 or offset + length > self.page_size:
            raise PageError(
                f"read [{offset}, {offset + length}) exceeds page size "
                f"{self.page_size}"
            )
        return bytes(data[offset : offset + length])

    def write(self, page: int, offset: int, payload: bytes) -> None:
        """Write ``payload`` at ``offset`` within one page."""
        data = self._page(page)
        if offset < 0 or offset + len(payload) > self.page_size:
            raise PageError(
                f"write [{offset}, {offset + len(payload)}) exceeds page size "
                f"{self.page_size}"
            )
        data[offset : offset + len(payload)] = payload

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write header + per-page CRC table + page bytes."""
        with open(path, "wb") as handle:
            handle.write(
                _HEADER.pack(_MAGIC, _VERSION, self.page_size, self.num_pages)
            )
            for page in self._pages:
                handle.write(struct.pack("<I", zlib.crc32(page)))
            for page in self._pages:
                handle.write(page)

    @classmethod
    def load(cls, path: str) -> "PagedFile":
        """Reopen a saved file, verifying the checksum of every page."""
        with open(path, "rb") as handle:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise StoreCorruptionError(f"{path}: truncated header")
            magic, version, page_size, num_pages = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise StoreCorruptionError(f"{path}: bad magic {magic!r}")
            if version != _VERSION:
                raise StoreCorruptionError(
                    f"{path}: unsupported format version {version}"
                )
            checksums = []
            for _ in range(num_pages):
                raw = handle.read(4)
                if len(raw) < 4:
                    raise StoreCorruptionError(f"{path}: truncated CRC table")
                checksums.append(struct.unpack("<I", raw)[0])
            paged = cls(page_size=page_size)
            for index in range(num_pages):
                payload = handle.read(page_size)
                if len(payload) < page_size:
                    raise StoreCorruptionError(f"{path}: truncated page {index}")
                if zlib.crc32(payload) != checksums[index]:
                    raise StoreCorruptionError(f"{path}: CRC mismatch on page {index}")
                paged._pages.append(bytearray(payload))
            return paged

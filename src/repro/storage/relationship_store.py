"""The relationship store: fixed-size, doubly-linked relationship records.

Hermes "uses a doubly-linked list record model when keeping track of
relationships.  A node needs to know only the first relationship in the
list since the rest can be retrieved by following the links" (Section 4).
Each record therefore carries *four* link fields: previous/next in the
source endpoint's chain and previous/next in the destination endpoint's
chain.

Cross-partition edges get a **ghost** record on the partition that does
not own the relationship's properties: the ghost preserves the graph
structure (so adjacency lists remain fully local) but holds no property
chain.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

from repro.exceptions import StorageError
from repro.storage.pages import PagedFile
from repro.storage.records import NULL_REF, FixedRecordStore, RecordCodec

_FLAG_IN_USE = 0x1
_FLAG_GHOST = 0x2


@dataclass(frozen=True)
class RelationshipRecord:
    """One fixed-size relationship record."""

    rel_id: int
    src: int
    dst: int
    src_prev: int = NULL_REF
    src_next: int = NULL_REF
    dst_prev: int = NULL_REF
    dst_next: int = NULL_REF
    first_prop: int = NULL_REF
    ghost: bool = False

    def other_endpoint(self, node_id: int) -> int:
        if node_id == self.src:
            return self.dst
        if node_id == self.dst:
            return self.src
        raise StorageError(
            f"node {node_id} is not an endpoint of relationship {self.rel_id}"
        )

    def next_for(self, node_id: int) -> int:
        """Next relationship in ``node_id``'s chain."""
        if node_id == self.src:
            return self.src_next
        if node_id == self.dst:
            return self.dst_next
        raise StorageError(
            f"node {node_id} is not an endpoint of relationship {self.rel_id}"
        )

    def prev_for(self, node_id: int) -> int:
        if node_id == self.src:
            return self.src_prev
        if node_id == self.dst:
            return self.dst_prev
        raise StorageError(
            f"node {node_id} is not an endpoint of relationship {self.rel_id}"
        )

    def with_next_for(self, node_id: int, rel_id: int) -> "RelationshipRecord":
        if node_id == self.src:
            return replace(self, src_next=rel_id)
        if node_id == self.dst:
            return replace(self, dst_next=rel_id)
        raise StorageError(
            f"node {node_id} is not an endpoint of relationship {self.rel_id}"
        )

    def with_prev_for(self, node_id: int, rel_id: int) -> "RelationshipRecord":
        if node_id == self.src:
            return replace(self, src_prev=rel_id)
        if node_id == self.dst:
            return replace(self, dst_prev=rel_id)
        raise StorageError(
            f"node {node_id} is not an endpoint of relationship {self.rel_id}"
        )

    def with_first_prop(self, prop_id: int) -> "RelationshipRecord":
        return replace(self, first_prop=prop_id)

    def with_ghost(self, ghost: bool) -> "RelationshipRecord":
        return replace(self, ghost=ghost)


class RelationshipCodec(RecordCodec):
    FORMAT = "<B8q"

    def pack(self, record: RelationshipRecord) -> bytes:
        flags = _FLAG_IN_USE
        if record.ghost:
            flags |= _FLAG_GHOST
        return struct.pack(
            self.FORMAT,
            flags,
            record.rel_id,
            record.src,
            record.dst,
            record.src_prev,
            record.src_next,
            record.dst_prev,
            record.dst_next,
            record.first_prop,
        )

    def unpack(self, payload: bytes) -> RelationshipRecord:
        (
            flags,
            rel_id,
            src,
            dst,
            src_prev,
            src_next,
            dst_prev,
            dst_next,
            first_prop,
        ) = struct.unpack(self.FORMAT, payload)
        return RelationshipRecord(
            rel_id=rel_id,
            src=src,
            dst=dst,
            src_prev=src_prev,
            src_next=src_next,
            dst_prev=dst_prev,
            dst_next=dst_next,
            first_prop=first_prop,
            ghost=bool(flags & _FLAG_GHOST),
        )

    def header(self, payload: bytes) -> Tuple[bool, int]:
        flags, rel_id = struct.unpack_from("<Bq", payload)
        return bool(flags & _FLAG_IN_USE), rel_id


class RelationshipStore:
    """Typed facade over the relationship record store."""

    def __init__(self, paged_file: Optional[PagedFile] = None):
        self._store = FixedRecordStore(RelationshipCodec(), paged_file=paged_file)

    def write(self, record: RelationshipRecord) -> None:
        self._store.write(record.rel_id, record)

    def read(self, rel_id: int) -> RelationshipRecord:
        return self._store.read(rel_id)

    def delete(self, rel_id: int) -> None:
        self._store.delete(rel_id)

    def __contains__(self, rel_id: int) -> bool:
        return rel_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def ids(self) -> Iterator[int]:
        return self._store.ids()

    def records(self) -> Iterator[RelationshipRecord]:
        return self._store.records()

    def max_id(self) -> Optional[int]:
        return self._store.max_id()

    @property
    def size_bytes(self) -> int:
        return self._store.pages.size_bytes

    def save(self, path: str) -> None:
        self._store.save(path)

    @classmethod
    def load(cls, path: str) -> "RelationshipStore":
        store = cls.__new__(cls)
        store._store = FixedRecordStore.load(path, RelationshipCodec())
        return store

"""Write-ahead logging with ARIES-style crash recovery.

Neo4j — which Hermes extends — "provides a disk-based, transactional
persistence engine (ACID compliant)" (Section 4).  This module supplies
that substrate for the record stores:

* :class:`WriteAheadLog` — an append-only log of framed, checksummed
  records.  Each frame carries its own CRC, so a torn tail write (the
  classic crash artifact) is detected and the log is truncated at the
  first damaged frame.
* log record kinds: BEGIN, UPDATE (with before- and after-images of one
  store record), COMMIT, ABORT.
* :func:`recover` — redo/undo recovery: after a crash, the after-images
  of committed transactions are replayed (redo) and the before-images of
  unfinished transactions are rolled back (undo).  Record writes are
  absolute (full images), so recovery is idempotent.

:class:`DurableRecordStore` (in :mod:`repro.storage.durable`) wires this
log around a :class:`~repro.storage.records.FixedRecordStore`.
"""

from __future__ import annotations

import enum
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.exceptions import StorageError

_FRAME_HEADER = struct.Struct("<IIB")  # payload length, crc32, kind
_RECORD_HEADER = struct.Struct("<qqII")  # txn_id, record_id, before_len, after_len


class LogKind(enum.IntEnum):
    BEGIN = 1
    UPDATE = 2
    COMMIT = 3
    ABORT = 4
    CHECKPOINT = 5


@dataclass(frozen=True)
class LogRecord:
    """One decoded WAL record."""

    kind: LogKind
    txn_id: int
    record_id: int = -1
    before: bytes = b""
    after: bytes = b""

    def encode(self) -> bytes:
        payload = _RECORD_HEADER.pack(
            self.txn_id, self.record_id, len(self.before), len(self.after)
        )
        return payload + self.before + self.after

    @classmethod
    def decode(cls, kind: LogKind, payload: bytes) -> "LogRecord":
        if len(payload) < _RECORD_HEADER.size:
            raise StorageError("truncated WAL record payload")
        txn_id, record_id, before_len, after_len = _RECORD_HEADER.unpack_from(payload)
        offset = _RECORD_HEADER.size
        if len(payload) != offset + before_len + after_len:
            raise StorageError("WAL record length mismatch")
        before = payload[offset : offset + before_len]
        after = payload[offset + before_len :]
        return cls(
            kind=kind,
            txn_id=txn_id,
            record_id=record_id,
            before=before,
            after=after,
        )


class WriteAheadLog:
    """Append-only framed log, in memory with optional file persistence.

    Frames are ``(length, crc32, kind, payload)``; iteration stops at the
    first frame whose CRC fails or whose bytes are incomplete — the
    recovery-safe interpretation of a torn write.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._buffer = bytearray()
        self._flushed = 0  # bytes guaranteed durable
        if path is not None and os.path.exists(path):
            with open(path, "rb") as handle:
                self._buffer = bytearray(handle.read())
            self._flushed = len(self._buffer)

    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> None:
        payload = record.encode()
        frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload), record.kind)
        self._buffer.extend(frame)
        self._buffer.extend(payload)

    def flush(self) -> None:
        """Force the log to stable storage (commit durability point)."""
        if self.path is not None:
            with open(self.path, "wb") as handle:
                handle.write(self._buffer)
                handle.flush()
                os.fsync(handle.fileno())
        self._flushed = len(self._buffer)

    def simulate_crash(self, keep_unflushed_bytes: int = 0) -> None:
        """Drop everything after the last flush (plus an optional torn
        prefix of unflushed bytes) — the test hook for crash injection."""
        keep = min(len(self._buffer), self._flushed + max(0, keep_unflushed_bytes))
        del self._buffer[keep:]

    # ------------------------------------------------------------------
    def records(self) -> Iterator[LogRecord]:
        """Decode frames until the end or the first damaged frame."""
        offset = 0
        buffer = self._buffer
        while offset + _FRAME_HEADER.size <= len(buffer):
            length, crc, kind_value = _FRAME_HEADER.unpack_from(buffer, offset)
            start = offset + _FRAME_HEADER.size
            end = start + length
            if end > len(buffer):
                return  # torn tail
            payload = bytes(buffer[start:end])
            if zlib.crc32(payload) != crc:
                return  # damaged frame: ignore it and everything after
            try:
                kind = LogKind(kind_value)
            except ValueError:
                return
            yield LogRecord.decode(kind, payload)
            offset = end

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    @property
    def size_bytes(self) -> int:
        return len(self._buffer)

    def truncate(self) -> None:
        """Checkpoint: all stores are known durable; restart the log."""
        self._buffer = bytearray()
        self._flushed = 0
        if self.path is not None and os.path.exists(self.path):
            os.remove(self.path)


@dataclass
class RecoveryReport:
    """What recovery did."""

    committed_txns: List[int]
    rolled_back_txns: List[int]
    redone_updates: int
    undone_updates: int


def analyze(log: WriteAheadLog):
    """Pass 1: classify transactions by outcome."""
    committed = set()
    aborted = set()
    seen = set()
    updates: List[LogRecord] = []
    for record in log.records():
        seen.add(record.txn_id)
        if record.kind is LogKind.COMMIT:
            committed.add(record.txn_id)
        elif record.kind is LogKind.ABORT:
            aborted.add(record.txn_id)
        elif record.kind is LogKind.UPDATE:
            updates.append(record)
    losers = seen - committed - aborted
    return committed, aborted, losers, updates


def recover(log: WriteAheadLog, apply_image) -> RecoveryReport:
    """ARIES-style recovery: repeat history, then undo losers.

    Pass 1 (redo) replays *every* update in log order — including those
    of aborted transactions, whose in-place rollbacks were themselves
    logged as compensation updates, so replaying history reproduces the
    exact pre-crash page state.  Pass 2 (undo) rolls back, in reverse log
    order, only the *losers*: transactions with neither COMMIT nor ABORT
    in the durable log.

    ``apply_image(record_id, image_bytes)`` writes one record image into
    the store; an empty image means "delete/clear the record".
    """
    committed, aborted, losers, updates = analyze(log)
    redone = 0
    undone = 0
    for record in updates:
        apply_image(record.record_id, record.after)
        redone += 1
    for record in reversed(updates):
        if record.txn_id in losers:
            apply_image(record.record_id, record.before)
            undone += 1
    return RecoveryReport(
        committed_txns=sorted(committed),
        rolled_back_txns=sorted(losers | aborted),
        redone_updates=redone,
        undone_updates=undone,
    )

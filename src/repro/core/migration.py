"""Physical-migration planning (phase 2 input, paper Section 3.2).

Phase 1 produces logical moves — only auxiliary records changed hands.
A :class:`MigrationPlan` turns those moves into the two-step physical
protocol the paper describes:

1. **copy step** — each *target* partition receives the list of vertices
   selected for migration to it, requests their physical records (vertex
   record, relationship records, properties) and inserts them locally;
   insertion-only operations run without cross-partition locks;
2. **synchronization barrier** — all partitions confirm copy completion;
3. **remove step** — source partitions mark the moved vertices
   *unavailable* (queries treat them as absent) and then delete them.

The plan object is pure data; :mod:`repro.cluster.migration_executor`
executes it against real stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import PartitioningError


@dataclass(frozen=True)
class VertexMove:
    """One vertex's physical relocation."""

    vertex: int
    source: int
    target: int


@dataclass
class MigrationPlan:
    """The full set of physical moves, grouped for the two-step protocol."""

    moves: List[VertexMove] = field(default_factory=list)

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    def incoming(self, partition: int) -> List[VertexMove]:
        """Moves whose copy step is executed *by* ``partition`` (as target)."""
        return [move for move in self.moves if move.target == partition]

    def outgoing(self, partition: int) -> List[VertexMove]:
        """Moves whose remove step is executed *by* ``partition`` (as source)."""
        return [move for move in self.moves if move.source == partition]

    def by_target(self) -> Dict[int, List[VertexMove]]:
        grouped: Dict[int, List[VertexMove]] = {}
        for move in self.moves:
            grouped.setdefault(move.target, []).append(move)
        return grouped

    def by_source(self) -> Dict[int, List[VertexMove]]:
        grouped: Dict[int, List[VertexMove]] = {}
        for move in self.moves:
            grouped.setdefault(move.source, []).append(move)
        return grouped


def build_migration_plan(moves: Dict[int, Tuple[int, int]]) -> MigrationPlan:
    """Build a plan from phase 1's ``{vertex: (source, final_target)}`` map.

    Vertices that bounced through intermediate partitions during phase 1
    move physically only once, source -> final target — this is exactly why
    the paper splits the algorithm into a logical and a physical phase
    ("border vertices are likely to change partitions more than once").
    """
    plan = MigrationPlan()
    for vertex, (source, target) in moves.items():
        if source == target:
            raise PartitioningError(
                f"vertex {vertex} has a no-op move {source} -> {target}"
            )
        plan.moves.append(VertexMove(vertex=vertex, source=source, target=target))
    plan.moves.sort(key=lambda move: (move.target, move.vertex))
    return plan

"""Configuration for the lightweight repartitioner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import PartitioningError


@dataclass(frozen=True)
class RepartitionerConfig:
    """Tuning knobs of the lightweight repartitioner (paper Section 3).

    Attributes
    ----------
    epsilon:
        Maximum allowed imbalance factor (1 < epsilon < 2).  A partition is
        *overloaded* when its weight exceeds ``epsilon`` times the average
        and *underloaded* below ``2 - epsilon`` times the average.  The
        paper's (and Hermes') default is 1.1, i.e. loads must stay within
        (0.9, 1.1) of the average.
    k:
        Maximum number of vertices each partition logically migrates per
        stage (Algorithm 2's top-k).  ``None`` derives k from
        ``k_fraction``.
    k_fraction:
        When ``k`` is None, ``k = max(1, k_fraction * n)`` — the paper sets
        k to "a small, fixed fraction of n".
    max_iterations:
        Safety bound on phase-1 iterations.  The paper observes convergence
        in < 50 iterations on million-vertex graphs.
    two_stage:
        The paper's oscillation-avoidance rule: each iteration runs a
        lower-ID -> higher-ID stage then a higher-ID -> lower-ID stage.
        Setting this False enables the single-stage ablation in which both
        directions are allowed simultaneously (Figure 2's pathology).
    stall_iterations:
        Plateau cut-off: stop when the edge-cut has not improved for this
        many iterations *while the partitioning is balance-valid*.  The
        parallel per-stage selection can admit balance-shedding /
        cut-restoring limit cycles near the epsilon boundary (the paper
        controls these only through small k); the plateau rule turns such
        cycles into a stable stop.  ``None`` disables it (used by the
        oscillation ablation).
    parallel_selection:
        Fan the per-partition candidate selection of each stage out over
        a thread pool (the paper's "each partition selects its candidates
        in parallel").  Selection is read-only against the stage snapshot
        and results are gathered in partition order, so the move sequence
        is identical to the serial default.
    selection_workers:
        Thread-pool size for ``parallel_selection``; ``None`` lets the
        executor pick (one thread per partition up to the CPU default).
    workload_alpha:
        Blend factor between static edge-cut gain and observed-traffic
        gain: candidate gain becomes ``(1 - alpha) * (d_t - d_s) +
        alpha * (h_t - h_s)`` where ``h`` is the attached edge heat (see
        :meth:`~repro.core.auxiliary.AuxiliaryData.attach_heat`).  At the
        default 0.0 the repartitioner takes the classic static path —
        bit-for-bit identical to runs without any heat attached.  At 1.0
        selection is driven purely by observed traversal traffic.
    """

    epsilon: float = 1.1
    k: Optional[int] = None
    k_fraction: float = 0.01
    max_iterations: int = 100
    two_stage: bool = True
    stall_iterations: Optional[int] = 8
    parallel_selection: bool = False
    selection_workers: Optional[int] = None
    workload_alpha: float = 0.0

    def __post_init__(self) -> None:
        if not 1.0 < self.epsilon < 2.0:
            raise PartitioningError(
                f"epsilon must be in the open interval (1, 2), got {self.epsilon}"
            )
        if self.k is not None and self.k < 1:
            raise PartitioningError(f"k must be >= 1, got {self.k}")
        if self.k is None and not 0.0 < self.k_fraction <= 1.0:
            raise PartitioningError(
                f"k_fraction must be in (0, 1], got {self.k_fraction}"
            )
        if self.max_iterations < 1:
            raise PartitioningError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.stall_iterations is not None and self.stall_iterations < 1:
            raise PartitioningError(
                f"stall_iterations must be >= 1 or None, got {self.stall_iterations}"
            )
        if self.selection_workers is not None and self.selection_workers < 1:
            raise PartitioningError(
                f"selection_workers must be >= 1 or None, got {self.selection_workers}"
            )
        if not 0.0 <= self.workload_alpha <= 1.0:
            raise PartitioningError(
                f"workload_alpha must be in [0, 1], got {self.workload_alpha}"
            )

    def effective_k(self, num_vertices: int) -> int:
        """The per-partition, per-stage migration cap for an n-vertex graph."""
        if self.k is not None:
            return self.k
        return max(1, int(self.k_fraction * num_vertices))

"""Algorithm 1: choosing the target partition for a migration candidate.

A vertex ``v`` hosted on source partition ``P_s`` is a candidate for
migration to ``P_t`` iff all of the following hold (Section 3.1):

1. the stage's one-way rule allows ``P_s -> P_t`` (stage 1: lower ID to
   higher ID; stage 2: the opposite) — this prevents oscillation;
2. moving ``v`` does not underload ``P_s`` (weight would fall below
   ``(2 - epsilon) * average``) nor overload ``P_t`` (weight would reach
   ``epsilon * average``);
3. either ``P_s`` is overloaded (off-loading moves with zero or negative
   gain are then acceptable) or the gain is strictly positive.

Among admissible targets the one with maximum gain wins.

Hot-path engineering (see DESIGN.md): migrations never change the total
system weight, so within one selection stage the average weight is a
constant.  Callers that evaluate many vertices against the same snapshot
pass a **frozen** ``average`` (and the source's precomputed ``overloaded``
flag) so no per-candidate weight-vector re-summing happens; the balance
tests below then reduce to one multiply-free comparison each, with float
semantics identical to the historical ``imbalance_factor`` calls.  When a
source is *not* overloaded, only targets the vertex actually has
neighbors in can beat the strictly-positive-gain bar, so the target scan
iterates the vertex's sparse counter keys (in ascending partition ID, the
same tie-break order as the dense scan) instead of all alpha partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.auxiliary import AuxiliaryData

#: Stage constants: stage 1 moves lower ID -> higher ID, stage 2 the reverse.
STAGE_LOW_TO_HIGH = 1
STAGE_HIGH_TO_LOW = 2
#: Ablation pseudo-stage allowing both directions at once (Figure 2 pathology).
STAGE_ANY_DIRECTION = 0


@dataclass(frozen=True)
class MigrationCandidate:
    """A vertex selected for logical migration, with its target and gain."""

    vertex: int
    source: int
    target: int
    #: static runs carry the integer edge-cut gain; workload-aware runs
    #: (workload_alpha > 0) carry the blended float gain
    gain: float

    def __lt__(self, other: "MigrationCandidate") -> bool:
        # Orders by gain so candidate lists can be heap-sorted directly.
        return self.gain < other.gain


def direction_allows(stage: int, source: int, target: int) -> bool:
    """The one-way migration rule for a stage."""
    if stage == STAGE_LOW_TO_HIGH:
        return target > source
    if stage == STAGE_HIGH_TO_LOW:
        return target < source
    return target != source  # STAGE_ANY_DIRECTION (ablation only)


def get_target_partition(
    aux: AuxiliaryData,
    vertex: int,
    stage: int,
    epsilon: float,
    average: Optional[float] = None,
    overloaded: Optional[bool] = None,
    alpha: float = 0.0,
) -> Tuple[Optional[int], float]:
    """Paper Algorithm 1: returns ``(target, gain)``; target None if no move.

    Only auxiliary data is consulted: the vertex's per-partition neighbor
    counts, its weight, and the aggregate partition weights.

    ``average`` and ``overloaded`` let a per-stage caller freeze the
    (migration-invariant) average weight and the source's overload status
    instead of re-deriving them per vertex; when omitted they are computed
    from ``aux`` exactly as the historical per-call code did.

    ``alpha`` > 0 blends observed-traffic heat into the gain:
    ``(1 - alpha) * (d_t - d_s) + alpha * (h_t - h_s)``.  Heat only
    exists toward partitions the vertex has real neighbors in (it is
    learned from traversed edges), so the sparse counter-key scan below
    still covers every target a non-overloaded source could admit, and
    at alpha == 0 the arithmetic — integer gains included — is exactly
    the historical static path.
    """
    source = aux.partition_of(vertex)
    weight = aux.weight_of(vertex)
    partition_weights = aux.partition_weights
    if average is None:
        average = aux.average_weight()

    # Line 2: moving v away must not underload the source.  The factor
    # expressions mirror ``imbalance_factor`` term for term so a frozen
    # average yields bit-identical floats.
    source_factor = (
        1.0 if average == 0 else (partition_weights[source] + -weight) / average
    )
    if source_factor < 2.0 - epsilon:
        return None, 0

    # Lines 4-6: an overloaded source may shed vertices at negative gain;
    # otherwise only strictly positive gains are considered.  Algorithm 1
    # literally writes ``maxGain = -1``, but the prose is explicit that an
    # overloaded partition should "consider all vertices as candidates for
    # migration to any other partition as long as they do not cause an
    # overload" — and the balance-convergence argument (Section 3.3.2)
    # needs that: in highly clustered graphs every vertex of an overloaded
    # partition can have strictly negative gain.  We follow the prose and
    # treat the overloaded bound as unbounded below; the top-k selection
    # still prefers the least-damaging (maximum-gain) vertices.
    if overloaded is None:
        overloaded = (
            1.0 if average == 0 else partition_weights[source] / average
        ) > epsilon

    counts = aux.neighbor_counts(vertex)
    d_source = counts.get(source, 0)
    if alpha:
        heat = aux.heat_counts(vertex)
        h_source = heat.get(source, 0.0)

    # Lines 7-13: scan admissible targets, keep the maximum-gain one.  A
    # non-overloaded source needs gain > 0, which only partitions present
    # in the sparse counters can supply; an overloaded source admits
    # negative gain, so every partition stays in play.
    target: Optional[int] = None
    max_gain: float = 0
    if overloaded:
        max_gain = float("-inf")
        candidates = range(aux.num_partitions)
    else:
        candidates = sorted(counts)
    for candidate in candidates:
        if candidate == source:
            continue
        if not direction_allows(stage, source, candidate):
            continue
        if alpha:
            candidate_gain = (1.0 - alpha) * (
                counts.get(candidate, 0) - d_source
            ) + alpha * (heat.get(candidate, 0.0) - h_source)
        else:
            candidate_gain = counts.get(candidate, 0) - d_source
        if candidate_gain <= max_gain:
            continue  # cheap reject before the balance check
        candidate_factor = (
            1.0
            if average == 0
            else (partition_weights[candidate] + weight) / average
        )
        if candidate_factor < epsilon:
            target = candidate
            max_gain = candidate_gain

    if target is None:
        return None, 0
    return target, max_gain

"""Algorithm 1: choosing the target partition for a migration candidate.

A vertex ``v`` hosted on source partition ``P_s`` is a candidate for
migration to ``P_t`` iff all of the following hold (Section 3.1):

1. the stage's one-way rule allows ``P_s -> P_t`` (stage 1: lower ID to
   higher ID; stage 2: the opposite) — this prevents oscillation;
2. moving ``v`` does not underload ``P_s`` (weight would fall below
   ``(2 - epsilon) * average``) nor overload ``P_t`` (weight would reach
   ``epsilon * average``);
3. either ``P_s`` is overloaded (off-loading moves with zero or negative
   gain are then acceptable) or the gain is strictly positive.

Among admissible targets the one with maximum gain wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.auxiliary import AuxiliaryData

#: Stage constants: stage 1 moves lower ID -> higher ID, stage 2 the reverse.
STAGE_LOW_TO_HIGH = 1
STAGE_HIGH_TO_LOW = 2
#: Ablation pseudo-stage allowing both directions at once (Figure 2 pathology).
STAGE_ANY_DIRECTION = 0


@dataclass(frozen=True)
class MigrationCandidate:
    """A vertex selected for logical migration, with its target and gain."""

    vertex: int
    source: int
    target: int
    gain: int

    def __lt__(self, other: "MigrationCandidate") -> bool:
        # Orders by gain so candidate lists can be heap-sorted directly.
        return self.gain < other.gain


def direction_allows(stage: int, source: int, target: int) -> bool:
    """The one-way migration rule for a stage."""
    if stage == STAGE_LOW_TO_HIGH:
        return target > source
    if stage == STAGE_HIGH_TO_LOW:
        return target < source
    return target != source  # STAGE_ANY_DIRECTION (ablation only)


def get_target_partition(
    aux: AuxiliaryData,
    vertex: int,
    stage: int,
    epsilon: float,
) -> Tuple[Optional[int], int]:
    """Paper Algorithm 1: returns ``(target, gain)``; target None if no move.

    Only auxiliary data is consulted: the vertex's per-partition neighbor
    counts, its weight, and the aggregate partition weights.
    """
    source = aux.partition_of(vertex)
    weight = aux.weight_of(vertex)

    # Line 2: moving v away must not underload the source.
    if aux.imbalance_factor(source, -weight) < 2.0 - epsilon:
        return None, 0

    # Lines 4-6: an overloaded source may shed vertices at negative gain;
    # otherwise only strictly positive gains are considered.  Algorithm 1
    # literally writes ``maxGain = -1``, but the prose is explicit that an
    # overloaded partition should "consider all vertices as candidates for
    # migration to any other partition as long as they do not cause an
    # overload" — and the balance-convergence argument (Section 3.3.2)
    # needs that: in highly clustered graphs every vertex of an overloaded
    # partition can have strictly negative gain.  We follow the prose and
    # treat the overloaded bound as unbounded below; the top-k selection
    # still prefers the least-damaging (maximum-gain) vertices.
    target: Optional[int] = None
    max_gain: float = 0
    if aux.imbalance_factor(source) > epsilon:
        max_gain = float("-inf")

    counts = aux.neighbor_counts(vertex)
    d_source = counts.get(source, 0)

    # Lines 7-13: scan admissible targets, keep the maximum-gain one.
    for candidate in range(aux.num_partitions):
        if candidate == source:
            continue
        if not direction_allows(stage, source, candidate):
            continue
        candidate_gain = counts.get(candidate, 0) - d_source
        if candidate_gain <= max_gain:
            continue  # cheap reject before the balance check
        if aux.imbalance_factor(candidate, +weight) < epsilon:
            target = candidate
            max_gain = candidate_gain

    if target is None:
        return None, 0
    return target, max_gain

"""Repartitioning trigger: detect when load imbalance exceeds epsilon.

Per the paper's running example (Section 2.2), repartitioning triggers
when some partition's imbalance factor — its aggregate weight over the
average partition weight — leaves the acceptable band
``(2 - epsilon, epsilon)``.  Each server can evaluate this locally since
the auxiliary data includes every partition's aggregate weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.auxiliary import AuxiliaryData
from repro.exceptions import PartitioningError


@dataclass(frozen=True)
class TriggerDecision:
    """Outcome of a trigger check, with the partitions that caused it."""

    should_repartition: bool
    overloaded: List[int]
    underloaded: List[int]
    max_imbalance: float


class ImbalanceTrigger:
    """Fires when any partition is overloaded or underloaded."""

    def __init__(self, epsilon: float = 1.1):
        if not 1.0 < epsilon < 2.0:
            raise PartitioningError(f"epsilon must be in (1, 2), got {epsilon}")
        self.epsilon = epsilon

    def check(self, aux: AuxiliaryData) -> TriggerDecision:
        overloaded = [
            p for p in range(aux.num_partitions) if aux.is_overloaded(p, self.epsilon)
        ]
        underloaded = [
            p for p in range(aux.num_partitions) if aux.is_underloaded(p, self.epsilon)
        ]
        return TriggerDecision(
            should_repartition=bool(overloaded or underloaded),
            overloaded=overloaded,
            underloaded=underloaded,
            max_imbalance=aux.max_imbalance(),
        )

"""Repartitioning trigger: detect when load imbalance exceeds epsilon.

Per the paper's running example (Section 2.2), repartitioning triggers
when some partition's imbalance factor — its aggregate weight over the
average partition weight — leaves the acceptable band
``(2 - epsilon, epsilon)``.  Each server can evaluate this locally since
the auxiliary data includes every partition's aggregate weight.

Every check is recorded into the attached telemetry hub (a counter split
by outcome plus, when recording, a ``trigger_decision`` event carrying
the offending partitions), so trigger behaviour is reconstructable from
the exported event log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.auxiliary import AuxiliaryData
from repro.exceptions import PartitioningError
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class TriggerDecision:
    """Outcome of a trigger check, with the partitions that caused it."""

    should_repartition: bool
    overloaded: List[int]
    underloaded: List[int]
    max_imbalance: float


class ImbalanceTrigger:
    """Fires when any partition is overloaded or underloaded."""

    def __init__(
        self, epsilon: float = 1.1, telemetry: Optional[Telemetry] = None
    ):
        if not 1.0 < epsilon < 2.0:
            raise PartitioningError(f"epsilon must be in (1, 2), got {epsilon}")
        self.epsilon = epsilon
        self.attach_telemetry(telemetry or NULL_TELEMETRY)

    _CHECKS_HELP = "trigger evaluations"

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        # Both series pass the family help string: whichever is created
        # first must not leave the family undocumented.
        self._fired = telemetry.counter(
            "trigger_checks_total", self._CHECKS_HELP, outcome="fired"
        )
        self._held = telemetry.counter(
            "trigger_checks_total", self._CHECKS_HELP, outcome="held"
        )

    def check(self, aux: AuxiliaryData) -> TriggerDecision:
        overloaded = [
            p for p in range(aux.num_partitions) if aux.is_overloaded(p, self.epsilon)
        ]
        underloaded = [
            p for p in range(aux.num_partitions) if aux.is_underloaded(p, self.epsilon)
        ]
        decision = TriggerDecision(
            should_repartition=bool(overloaded or underloaded),
            overloaded=overloaded,
            underloaded=underloaded,
            max_imbalance=aux.max_imbalance(),
        )
        (self._fired if decision.should_repartition else self._held).inc()
        self.telemetry.event(
            "trigger_decision",
            should_repartition=decision.should_repartition,
            overloaded=overloaded,
            underloaded=underloaded,
            max_imbalance=decision.max_imbalance,
            epsilon=self.epsilon,
        )
        return decision

"""Auxiliary data — the *only* state the lightweight repartitioner reads.

Per the paper (Sections 2.2 and 3.1) the auxiliary data consists of:

* for each hosted vertex ``v``, alpha integers: the number of neighbors of
  ``v`` in each of the alpha partitions (stored sparsely — only partitions
  where the count is non-zero — which is what makes the amortized size
  ``n + Theta(alpha)`` of Theorem 2 achievable);
* the aggregate weight of *all* partitions (every server knows the total
  weight of every other partition);
* each hosted vertex's own weight and current partition.

The auxiliary data is maintained incrementally as user requests execute:
adding an edge increments two integers, reading a vertex bumps its weight,
and a logical migration moves one vertex's record and adjusts its
neighbors' counters.  Maintenance cost is therefore proportional to the
rate of change of the graph, never to its size.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import PartitioningError, VertexNotFoundError
from repro.graph.adjacency import SocialGraph
from repro.partitioning.base import Partitioning


class AuxiliaryData:
    """The repartitioner's complete view of the system."""

    __slots__ = (
        "num_partitions",
        "partition_weights",
        "_vertex_partition",
        "_vertex_weights",
        "_neighbor_counts",
        "_members",
    )

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise PartitioningError("need at least one partition")
        self.num_partitions = num_partitions
        #: aggregate weight of each partition (known to every server)
        self.partition_weights: List[float] = [0.0] * num_partitions
        self._vertex_partition: Dict[int, int] = {}
        self._vertex_weights: Dict[int, float] = {}
        #: sparse counters: vertex -> {partition: neighbor count > 0}
        self._neighbor_counts: Dict[int, Dict[int, int]] = {}
        self._members: List[Set[int]] = [set() for _ in range(num_partitions)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: SocialGraph, partitioning: Partitioning
    ) -> "AuxiliaryData":
        """Bootstrap auxiliary data from a full graph + assignment.

        In the real system this state accretes from request execution; the
        simulator builds it in one pass when a cluster is loaded.
        """
        aux = cls(partitioning.num_partitions)
        for vertex in graph.vertices():
            aux.add_vertex(
                vertex, partitioning.partition_of(vertex), graph.weight(vertex)
            )
        for u, v in graph.edges():
            aux.add_edge(u, v)
        return aux

    # ------------------------------------------------------------------
    # Incremental maintenance (driven by user requests)
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, partition: int, weight: float) -> None:
        if vertex in self._vertex_partition:
            raise PartitioningError(f"vertex {vertex} already tracked")
        self._check_partition(partition)
        self._vertex_partition[vertex] = partition
        self._vertex_weights[vertex] = weight
        self._neighbor_counts[vertex] = {}
        self._members[partition].add(vertex)
        self.partition_weights[partition] += weight

    def remove_vertex(self, vertex: int) -> None:
        partition = self.partition_of(vertex)
        counts = self._neighbor_counts[vertex]
        if any(counts.values()):
            raise PartitioningError(
                f"vertex {vertex} still has incident edges; remove them first"
            )
        self.partition_weights[partition] -= self._vertex_weights[vertex]
        self._members[partition].discard(vertex)
        del self._vertex_partition[vertex]
        del self._vertex_weights[vertex]
        del self._neighbor_counts[vertex]

    def add_edge(self, u: int, v: int) -> None:
        """A new relationship: two integers get incremented (Section 3.1)."""
        pu, pv = self.partition_of(u), self.partition_of(v)
        self._bump(u, pv, +1)
        self._bump(v, pu, +1)

    def remove_edge(self, u: int, v: int) -> None:
        pu, pv = self.partition_of(u), self.partition_of(v)
        self._bump(u, pv, -1)
        self._bump(v, pu, -1)

    def add_weight(self, vertex: int, delta: float) -> None:
        """A read request increments the vertex's popularity weight."""
        partition = self.partition_of(vertex)
        self._vertex_weights[vertex] += delta
        self.partition_weights[partition] += delta

    def set_weight(self, vertex: int, weight: float) -> None:
        self.add_weight(vertex, weight - self._vertex_weights[vertex])

    def decay_weights(self, factor: float, floor: float = 1.0) -> None:
        """Age popularity: multiply every weight by ``factor`` (0..1].

        Read-count weights grow without bound; real deployments age them
        so the balancer tracks *current* traffic rather than all-time
        totals.  ``floor`` keeps every vertex minimally weighted so empty
        partitions remain comparable.
        """
        if not 0.0 < factor <= 1.0:
            raise PartitioningError(f"decay factor must be in (0, 1], got {factor}")
        self.partition_weights = [0.0] * self.num_partitions
        for vertex, weight in self._vertex_weights.items():
            decayed = max(floor, weight * factor)
            self._vertex_weights[vertex] = decayed
            self.partition_weights[self._vertex_partition[vertex]] += decayed

    def _bump(self, vertex: int, partition: int, delta: int) -> None:
        counts = self._neighbor_counts[vertex]
        new_value = counts.get(partition, 0) + delta
        if new_value < 0:
            raise PartitioningError(
                f"neighbor count of vertex {vertex} in partition {partition} "
                "would become negative"
            )
        if new_value == 0:
            counts.pop(partition, None)
        else:
            counts[partition] = new_value

    # ------------------------------------------------------------------
    # Logical migration
    # ------------------------------------------------------------------
    def apply_move(self, vertex: int, target: int, neighbors: Iterable[int]) -> int:
        """Logically migrate ``vertex`` to ``target``; returns the source.

        Moving a vertex transfers its auxiliary record to the target and
        updates the counters of its neighbors (their "count in source"
        decrements, "count in target" increments) plus the two partition
        weights.  ``neighbors`` is the vertex's adjacency list, which the
        *source server* knows locally — the migration message carries the
        updates; no global state is consulted.
        """
        self._check_partition(target)
        source = self.partition_of(vertex)
        if source == target:
            return source
        weight = self._vertex_weights[vertex]
        self.partition_weights[source] -= weight
        self.partition_weights[target] += weight
        self._members[source].discard(vertex)
        self._members[target].add(vertex)
        self._vertex_partition[vertex] = target
        for nbr in neighbors:
            self._bump(nbr, source, -1)
            self._bump(nbr, target, +1)
        return source

    # ------------------------------------------------------------------
    # Queries used by Algorithm 1
    # ------------------------------------------------------------------
    def partition_of(self, vertex: int) -> int:
        try:
            return self._vertex_partition[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def weight_of(self, vertex: int) -> float:
        try:
            return self._vertex_weights[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def neighbor_count(self, vertex: int, partition: int) -> int:
        """``d_v(partition)``: how many neighbors of v live in partition."""
        self._check_partition(partition)
        counts = self._neighbor_counts.get(vertex)
        if counts is None:
            raise VertexNotFoundError(vertex)
        return counts.get(partition, 0)

    def neighbor_counts(self, vertex: int) -> Dict[int, int]:
        """Sparse view {partition: count} (do not mutate)."""
        counts = self._neighbor_counts.get(vertex)
        if counts is None:
            raise VertexNotFoundError(vertex)
        return counts

    def degree(self, vertex: int) -> int:
        return sum(self.neighbor_counts(vertex).values())

    def external_degree(self, vertex: int) -> int:
        """``d_ex(v)``: neighbors in partitions other than v's own."""
        home = self.partition_of(vertex)
        return sum(
            count
            for partition, count in self.neighbor_counts(vertex).items()
            if partition != home
        )

    def vertices_in(self, partition: int) -> Set[int]:
        self._check_partition(partition)
        return self._members[partition]

    def vertices(self) -> Iterator[int]:
        return iter(self._vertex_partition)

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_partition)

    # ------------------------------------------------------------------
    # Balance queries (Algorithm 1 lines 2, 5 and 11)
    # ------------------------------------------------------------------
    def average_weight(self) -> float:
        return sum(self.partition_weights) / self.num_partitions

    def imbalance_factor(self, partition: int, weight_delta: float = 0.0) -> float:
        """Ratio of (partition weight + delta) to the average weight.

        ``weight_delta`` expresses the hypotheticals of Algorithm 1:
        ``imbalance_factor(P - {v})`` passes ``-w(v)`` and
        ``imbalance_factor(P + {v})`` passes ``+w(v)``.  Total system
        weight — and hence the average — is unchanged by migrations.
        """
        self._check_partition(partition)
        average = self.average_weight()
        if average == 0:
            return 1.0
        return (self.partition_weights[partition] + weight_delta) / average

    def is_overloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) > epsilon

    def is_underloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) < 2.0 - epsilon

    def max_imbalance(self) -> float:
        average = self.average_weight()
        if average == 0:
            return 1.0
        return max(self.partition_weights) / average

    # ------------------------------------------------------------------
    # Derived whole-system metrics (for instrumentation, not the algorithm)
    # ------------------------------------------------------------------
    def edge_cut(self) -> int:
        """Edge-cut computed purely from the counters: sum d_ex(v) / 2."""
        total_external = sum(self.external_degree(v) for v in self.vertices())
        return total_external // 2

    def to_partitioning(self) -> Partitioning:
        """Materialize the current assignment as a Partitioning object."""
        partitioning = Partitioning(self.num_partitions)
        for vertex, partition in self._vertex_partition.items():
            partitioning.assign(vertex, partition)
        return partitioning

    def memory_entries(self) -> Tuple[int, int]:
        """(counter entries, weight entries) actually stored.

        Theorem 2 bounds the amortized counter entries by n + Theta(alpha);
        tests verify this against the sparse representation.
        """
        counter_entries = sum(len(c) for c in self._neighbor_counts.values())
        return counter_entries, self.num_partitions

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise PartitioningError(
                f"partition {partition} out of range [0, {self.num_partitions})"
            )

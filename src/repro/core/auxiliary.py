"""Auxiliary data — the *only* state the lightweight repartitioner reads.

Per the paper (Sections 2.2 and 3.1) the auxiliary data consists of:

* for each hosted vertex ``v``, alpha integers: the number of neighbors of
  ``v`` in each of the alpha partitions (stored sparsely — only partitions
  where the count is non-zero — which is what makes the amortized size
  ``n + Theta(alpha)`` of Theorem 2 achievable);
* the aggregate weight of *all* partitions (every server knows the total
  weight of every other partition);
* each hosted vertex's own weight and current partition.

The auxiliary data is maintained incrementally as user requests execute:
adding an edge increments two integers, reading a vertex bumps its weight,
and a logical migration moves one vertex's record and adjusts its
neighbors' counters.  Maintenance cost is therefore proportional to the
rate of change of the graph, never to its size.

On top of the paper's counters this implementation keeps three derived
structures up to date under the same incremental maintenance (see
DESIGN.md, "Hot-path engineering"):

* per-partition **directional boundary sets** — the vertices with >= 1
  neighbor in a higher-ID (resp. lower-ID) partition, i.e. the only
  vertices a non-overloaded partition ever needs to scan during a
  stage-1 (resp. stage-2) candidate selection;
* an **incremental external-degree total**, making ``edge_cut()`` O(1);
* a **memoized total/max of the partition-weight vector**, making
  ``average_weight()`` and ``max_imbalance()`` O(1) between weight
  changes (the refreshed values are computed with exactly the same
  ``sum``/``max`` expressions as before, so results are bit-identical).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.exceptions import PartitioningError, VertexNotFoundError
from repro.graph.compact import GraphRead
from repro.partitioning.base import Partitioning


def decayed_weight(weight: float, factor: float, floor: float) -> float:
    """The shared popularity-aging rule: multiply, but never below floor."""
    return max(floor, weight * factor)


def is_uniform_capacity(capacities: Iterable[float]) -> bool:
    """True when every partition has the default capacity of exactly 1.0.

    The uniform case keeps the historical balance expressions (weight
    divided by the plain average), so capacity-unaware clusters stay
    bit-identical to the pre-capacity implementation.
    """
    return all(capacity == 1.0 for capacity in capacities)


def check_capacity(capacity: float) -> None:
    if not (capacity >= 0.0 and math.isfinite(capacity)):
        raise PartitioningError(
            f"capacity must be a finite non-negative number, got {capacity}"
        )


def capacity_targets(total_weight: float, capacities: List[float]) -> List[float]:
    """Capacity-weighted balance target per partition.

    ``target_p = total_weight * cap_p / sum(cap)``.  Both auxiliary
    implementations evaluate this one shared expression, so they agree on
    weighted imbalance bit for bit.  An all-zero capacity vector yields
    all-zero targets (every non-empty partition reads as overloaded).
    """
    total_capacity = sum(capacities)
    if total_capacity <= 0.0:
        return [0.0] * len(capacities)
    return [
        total_weight * (capacity / total_capacity) for capacity in capacities
    ]


def weighted_imbalance(weight: float, target: float) -> float:
    """Imbalance of one partition against its capacity-weighted target.

    A zero-capacity partition (e.g. one being drained) has target 0: it
    is infinitely overloaded while it still holds weight and exactly
    balanced once empty, so the balancer sheds from it and never moves
    load toward it.
    """
    if target == 0.0:
        return 1.0 if weight == 0.0 else math.inf
    return weight / target


def check_decay_factor(factor: float) -> None:
    if not 0.0 < factor <= 1.0:
        raise PartitioningError(f"decay factor must be in (0, 1], got {factor}")


class AuxiliaryData:
    """The repartitioner's complete view of the system."""

    __slots__ = (
        "num_partitions",
        "partition_weights",
        "capacities",
        "_uniform_capacity",
        "_vertex_partition",
        "_vertex_weights",
        "_neighbor_counts",
        "_members",
        "_boundary_high",
        "_boundary_low",
        "_ext_high",
        "_ext_low",
        "_total_external",
        "_weights_dirty",
        "_cached_total_weight",
        "_cached_max_weight",
        "_edge_heat",
        "_heat_counts",
    )

    #: shared empty heat map returned for unheated vertices (do not mutate)
    _NO_HEAT: Dict[int, float] = {}

    def __init__(
        self, num_partitions: int, capacities: Optional[List[float]] = None
    ):
        if num_partitions < 1:
            raise PartitioningError("need at least one partition")
        self.num_partitions = num_partitions
        #: aggregate weight of each partition (known to every server)
        self.partition_weights: List[float] = [0.0] * num_partitions
        #: relative serving capacity per partition (1.0 = one standard
        #: server); balance targets are weighted by this vector
        if capacities is None:
            capacities = [1.0] * num_partitions
        elif len(capacities) != num_partitions:
            raise PartitioningError(
                f"{len(capacities)} capacities for {num_partitions} partitions"
            )
        for capacity in capacities:
            check_capacity(capacity)
        self.capacities: List[float] = list(capacities)
        self._uniform_capacity = is_uniform_capacity(self.capacities)
        self._vertex_partition: Dict[int, int] = {}
        self._vertex_weights: Dict[int, float] = {}
        #: sparse counters: vertex -> {partition: neighbor count > 0}
        self._neighbor_counts: Dict[int, Dict[int, int]] = {}
        self._members: List[Set[int]] = [set() for _ in range(num_partitions)]
        #: vertices with >= 1 neighbor on a higher-ID / lower-ID partition
        #: (stage 1 / stage 2 scan sets; their union is the boundary)
        self._boundary_high: List[Set[int]] = [set() for _ in range(num_partitions)]
        self._boundary_low: List[Set[int]] = [set() for _ in range(num_partitions)]
        self._ext_high: Dict[int, int] = {}
        self._ext_low: Dict[int, int] = {}
        self._total_external = 0
        self._weights_dirty = True
        self._cached_total_weight = 0.0
        self._cached_max_weight = 0.0
        #: observed-traffic heat per canonical edge (None until attached)
        self._edge_heat: Optional[Dict[Tuple[int, int], float]] = None
        #: per-vertex heat toward each partition, the weighted analogue of
        #: the neighbor counters: heat_counts[v][p] = sum of heat of v's
        #: edges whose other endpoint lives on p
        self._heat_counts: Optional[Dict[int, Dict[int, float]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: GraphRead, partitioning: Partitioning
    ) -> "AuxiliaryData":
        """Bootstrap auxiliary data from a full graph + assignment.

        In the real system this state accretes from request execution; the
        simulator builds it in one pass when a cluster is loaded.  Any
        read-protocol substrate works: counter accumulation is
        commutative and candidate selection resolves partition ties by ID,
        so dict-of-sets and CSR inputs yield identical phase-1 outputs.
        """
        aux = cls(partitioning.num_partitions)
        for vertex in graph.vertices():
            aux.add_vertex(
                vertex, partitioning.partition_of(vertex), graph.weight_of(vertex)
            )
        for u, v in graph.edges():
            aux.add_edge(u, v)
        return aux

    # ------------------------------------------------------------------
    # Incremental maintenance (driven by user requests)
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, partition: int, weight: float) -> None:
        if vertex in self._vertex_partition:
            raise PartitioningError(f"vertex {vertex} already tracked")
        self._check_partition(partition)
        self._vertex_partition[vertex] = partition
        self._vertex_weights[vertex] = weight
        self._neighbor_counts[vertex] = {}
        self._members[partition].add(vertex)
        self._ext_high[vertex] = 0
        self._ext_low[vertex] = 0
        self.partition_weights[partition] += weight
        self._weights_dirty = True

    def remove_vertex(self, vertex: int) -> None:
        partition = self.partition_of(vertex)
        counts = self._neighbor_counts[vertex]
        if any(counts.values()):
            raise PartitioningError(
                f"vertex {vertex} still has incident edges; remove them first"
            )
        if self._heat_counts is not None:
            self._heat_counts.pop(vertex, None)
        self.partition_weights[partition] -= self._vertex_weights[vertex]
        self._weights_dirty = True
        self._members[partition].discard(vertex)
        self._boundary_high[partition].discard(vertex)
        self._boundary_low[partition].discard(vertex)
        del self._vertex_partition[vertex]
        del self._vertex_weights[vertex]
        del self._neighbor_counts[vertex]
        del self._ext_high[vertex]
        del self._ext_low[vertex]

    def add_edge(self, u: int, v: int) -> None:
        """A new relationship: two integers get incremented (Section 3.1)."""
        pu, pv = self.partition_of(u), self.partition_of(v)
        self._bump(u, pu, pv, +1)
        self._bump(v, pv, pu, +1)

    def remove_edge(self, u: int, v: int) -> None:
        pu, pv = self.partition_of(u), self.partition_of(v)
        self._bump(u, pu, pv, -1)
        self._bump(v, pv, pu, -1)
        if self._edge_heat:
            heat = self._edge_heat.pop((u, v) if u <= v else (v, u), 0.0)
            if heat:
                self._drop_heat(u, pv, heat)
                self._drop_heat(v, pu, heat)

    def add_weight(self, vertex: int, delta: float) -> None:
        """A read request increments the vertex's popularity weight."""
        partition = self.partition_of(vertex)
        self._vertex_weights[vertex] += delta
        self.partition_weights[partition] += delta
        self._weights_dirty = True

    def set_weight(self, vertex: int, weight: float) -> None:
        self.add_weight(vertex, weight - self._vertex_weights[vertex])

    def decay_weights(self, factor: float, floor: float = 1.0) -> None:
        """Age popularity: multiply every weight by ``factor`` (0..1].

        Read-count weights grow without bound; real deployments age them
        so the balancer tracks *current* traffic rather than all-time
        totals.  ``floor`` keeps every vertex minimally weighted so empty
        partitions remain comparable.

        Both auxiliary implementations share this semantics: each vertex
        weight becomes ``max(floor, weight * factor)`` and each
        partition's aggregate is rebuilt as the sum of its members'
        decayed weights in sorted-vertex order, so centralized and
        sharded stores end up with identical weight vectors.
        """
        check_decay_factor(factor)
        weights = self._vertex_weights
        for vertex, weight in weights.items():
            weights[vertex] = decayed_weight(weight, factor, floor)
        for partition, members in enumerate(self._members):
            self.partition_weights[partition] = sum(
                weights[vertex] for vertex in sorted(members)
            )
        self._weights_dirty = True

    def _bump(self, vertex: int, home: int, partition: int, delta: int) -> None:
        """Adjust ``vertex``'s neighbor count in ``partition`` by ``delta``.

        ``home`` is the vertex's own partition; counts toward any *other*
        partition are external degree, so the boundary set and the running
        external-degree total are maintained here, in the same O(1) step.
        """
        counts = self._neighbor_counts[vertex]
        new_value = counts.get(partition, 0) + delta
        if new_value < 0:
            raise PartitioningError(
                f"neighbor count of vertex {vertex} in partition {partition} "
                "would become negative"
            )
        if new_value == 0:
            counts.pop(partition, None)
        else:
            counts[partition] = new_value
        if partition > home:
            ext = self._ext_high[vertex] + delta
            self._ext_high[vertex] = ext
            self._total_external += delta
            if ext == 0:
                self._boundary_high[home].discard(vertex)
            elif ext == delta:  # first neighbor in a higher partition
                self._boundary_high[home].add(vertex)
        elif partition < home:
            ext = self._ext_low[vertex] + delta
            self._ext_low[vertex] = ext
            self._total_external += delta
            if ext == 0:
                self._boundary_low[home].discard(vertex)
            elif ext == delta:  # first neighbor in a lower partition
                self._boundary_low[home].add(vertex)

    # ------------------------------------------------------------------
    # Logical migration
    # ------------------------------------------------------------------
    def apply_move(self, vertex: int, target: int, neighbors: Iterable[int]) -> int:
        """Logically migrate ``vertex`` to ``target``; returns the source.

        Moving a vertex transfers its auxiliary record to the target and
        updates the counters of its neighbors (their "count in source"
        decrements, "count in target" increments) plus the two partition
        weights.  ``neighbors`` is the vertex's adjacency list, which the
        *source server* knows locally — the migration message carries the
        updates; no global state is consulted.
        """
        self._check_partition(target)
        source = self.partition_of(vertex)
        if source == target:
            return source
        weight = self._vertex_weights[vertex]
        self.partition_weights[source] -= weight
        self.partition_weights[target] += weight
        self._weights_dirty = True
        self._members[source].discard(vertex)
        self._members[target].add(vertex)
        self._vertex_partition[vertex] = target
        # The vertex's own external degree is re-derived from its (sparse)
        # counters against the new home; its neighbors' external degrees
        # adjust inside the per-neighbor counter bumps below.
        counts = self._neighbor_counts[vertex]
        new_high = 0
        new_low = 0
        for partition, count in counts.items():
            if partition > target:
                new_high += count
            elif partition < target:
                new_low += count
        self._total_external += (
            new_high + new_low - self._ext_high[vertex] - self._ext_low[vertex]
        )
        self._ext_high[vertex] = new_high
        self._ext_low[vertex] = new_low
        self._boundary_high[source].discard(vertex)
        self._boundary_low[source].discard(vertex)
        if new_high:
            self._boundary_high[target].add(vertex)
        if new_low:
            self._boundary_low[target].add(vertex)
        # Per-neighbor counter transfer, inlined from _bump: each
        # neighbor's "count in source" decrements and "count in target"
        # increments.  Total external degree only changes for neighbors
        # hosted on the source or target; a neighbor elsewhere keeps its
        # total but may shift one unit between its high/low direction
        # when source and target straddle its home partition.
        vertex_partition = self._vertex_partition
        neighbor_counts = self._neighbor_counts
        ext_high = self._ext_high
        ext_low = self._ext_low
        boundary_high = self._boundary_high
        boundary_low = self._boundary_low
        edge_heat = self._edge_heat
        for nbr in neighbors:
            nbr_counts = neighbor_counts[nbr]
            value = nbr_counts.get(source, 0) - 1
            if value < 0:
                raise PartitioningError(
                    f"neighbor count of vertex {nbr} in partition {source} "
                    "would become negative"
                )
            if value == 0:
                del nbr_counts[source]
            else:
                nbr_counts[source] = value
            nbr_counts[target] = nbr_counts.get(target, 0) + 1
            if edge_heat is not None:
                # The weighted counters move in lockstep with the integer
                # ones: the neighbor's heat toward the source partition
                # follows the vertex to the target.
                heat = edge_heat.get(
                    (vertex, nbr) if vertex <= nbr else (nbr, vertex)
                )
                if heat:
                    self._drop_heat(nbr, source, heat)
                    self._add_heat(nbr, target, heat)
            home = vertex_partition[nbr]
            if home == source:
                # The edge to ``vertex`` turned external, toward target.
                if target > home:
                    ext = ext_high[nbr] + 1
                    ext_high[nbr] = ext
                    if ext == 1:
                        boundary_high[home].add(nbr)
                else:
                    ext = ext_low[nbr] + 1
                    ext_low[nbr] = ext
                    if ext == 1:
                        boundary_low[home].add(nbr)
                self._total_external += 1
            elif home == target:
                # The edge to ``vertex`` turned internal; it pointed
                # toward source before the move.
                if source > home:
                    ext = ext_high[nbr] - 1
                    ext_high[nbr] = ext
                    if ext == 0:
                        boundary_high[home].discard(nbr)
                else:
                    ext = ext_low[nbr] - 1
                    ext_low[nbr] = ext
                    if ext == 0:
                        boundary_low[home].discard(nbr)
                self._total_external -= 1
            else:
                # Third-party host: total external degree is unchanged,
                # but the edge may swap direction if source and target
                # lie on opposite sides of the neighbor's home.
                source_high = source > home
                if source_high != (target > home):
                    if source_high:
                        ext = ext_high[nbr] - 1
                        ext_high[nbr] = ext
                        if ext == 0:
                            boundary_high[home].discard(nbr)
                        ext = ext_low[nbr] + 1
                        ext_low[nbr] = ext
                        if ext == 1:
                            boundary_low[home].add(nbr)
                    else:
                        ext = ext_low[nbr] - 1
                        ext_low[nbr] = ext
                        if ext == 0:
                            boundary_low[home].discard(nbr)
                        ext = ext_high[nbr] + 1
                        ext_high[nbr] = ext
                        if ext == 1:
                            boundary_high[home].add(nbr)
        return source

    # ------------------------------------------------------------------
    # Workload heat (observed-traffic weighting for the gain function)
    # ------------------------------------------------------------------
    def attach_heat(self, edge_heat: Mapping[Tuple[int, int], float]) -> None:
        """Install observed-traffic edge heat for weighted gain.

        ``edge_heat`` maps (undirected) edges to non-negative heat —
        typically :meth:`~repro.workloads.model.WorkloadModel.normalized_edge_heat`.
        Keys are canonicalized, zero/negative heat and edges with an
        untracked endpoint are dropped.  Heat must describe *real* edges:
        the weighted selection only considers target partitions the
        vertex has neighbors in, so heat toward a partition with no
        counted neighbor is never read.  From here on :meth:`apply_move`
        and :meth:`remove_edge` keep the weighted counters in lockstep
        with the integer ones; new edges start cold until re-attached.
        """
        vertex_partition = self._vertex_partition
        canonical: Dict[Tuple[int, int], float] = {}
        for (u, v), heat in edge_heat.items():
            if heat <= 0.0 or u == v:
                continue
            if u > v:
                u, v = v, u
            if u not in vertex_partition or v not in vertex_partition:
                continue
            canonical[(u, v)] = canonical.get((u, v), 0.0) + heat
        heat_counts: Dict[int, Dict[int, float]] = {}
        for (u, v), heat in canonical.items():
            pu, pv = vertex_partition[u], vertex_partition[v]
            counts_u = heat_counts.setdefault(u, {})
            counts_u[pv] = counts_u.get(pv, 0.0) + heat
            counts_v = heat_counts.setdefault(v, {})
            counts_v[pu] = counts_v.get(pu, 0.0) + heat
        self._edge_heat = canonical
        self._heat_counts = heat_counts

    def detach_heat(self) -> None:
        """Drop the heat overlay; gain falls back to pure edge counts."""
        self._edge_heat = None
        self._heat_counts = None

    @property
    def has_heat(self) -> bool:
        """True when a non-empty heat overlay is attached."""
        return bool(self._edge_heat)

    def heat_counts(self, vertex: int) -> Dict[int, float]:
        """Sparse view {partition: heat} — the weighted analogue of
        :meth:`neighbor_counts` (do not mutate; empty when unheated)."""
        if not self._heat_counts:
            return self._NO_HEAT
        return self._heat_counts.get(vertex, self._NO_HEAT)

    def heat_selection_view(self, partition: int) -> Dict[int, Dict[int, float]]:
        """Per-vertex heat counters readable for ``partition``'s hosted
        vertices (do not mutate) — the weighted companion map of
        :meth:`selection_view`; vertices absent from it are unheated."""
        self._check_partition(partition)
        return self._heat_counts if self._heat_counts is not None else {}

    def _add_heat(self, vertex: int, partition: int, heat: float) -> None:
        counts = self._heat_counts.setdefault(vertex, {})
        counts[partition] = counts.get(partition, 0.0) + heat

    def _drop_heat(self, vertex: int, partition: int, heat: float) -> None:
        counts = self._heat_counts.get(vertex)
        if counts is None:
            return
        value = counts.get(partition, 0.0) - heat
        # Exact cancellation is not guaranteed in floats; treat ulp-scale
        # residue as zero so empty entries do not accumulate.
        if abs(value) < 1e-12:
            counts.pop(partition, None)
            if not counts:
                self._heat_counts.pop(vertex, None)
        else:
            counts[partition] = value

    # ------------------------------------------------------------------
    # Queries used by Algorithm 1
    # ------------------------------------------------------------------
    def partition_of(self, vertex: int) -> int:
        try:
            return self._vertex_partition[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def weight_of(self, vertex: int) -> float:
        try:
            return self._vertex_weights[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def neighbor_count(self, vertex: int, partition: int) -> int:
        """``d_v(partition)``: how many neighbors of v live in partition."""
        self._check_partition(partition)
        counts = self._neighbor_counts.get(vertex)
        if counts is None:
            raise VertexNotFoundError(vertex)
        return counts.get(partition, 0)

    def neighbor_counts(self, vertex: int) -> Dict[int, int]:
        """Sparse view {partition: count} (do not mutate)."""
        counts = self._neighbor_counts.get(vertex)
        if counts is None:
            raise VertexNotFoundError(vertex)
        return counts

    def degree(self, vertex: int) -> int:
        return sum(self.neighbor_counts(vertex).values())

    def external_degree(self, vertex: int) -> int:
        """``d_ex(v)``: neighbors in partitions other than v's own.  O(1)."""
        try:
            return self._ext_high[vertex] + self._ext_low[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertices_in(self, partition: int) -> Set[int]:
        self._check_partition(partition)
        return self._members[partition]

    def boundary_vertices(self, partition: int) -> Set[int]:
        """Hosted vertices with >= 1 external neighbor (fresh set).

        These are the only admissible migration candidates of a partition
        that is not overloaded: an interior vertex's gain toward every
        other partition is ``-d_v(home) <= 0``, which Algorithm 1 rejects
        unless the source may shed load at negative gain.
        """
        self._check_partition(partition)
        return self._boundary_high[partition] | self._boundary_low[partition]

    def boundary_toward_higher(self, partition: int) -> Set[int]:
        """Hosted vertices with >= 1 neighbor in a *higher-ID* partition
        (do not mutate) — the stage-1 candidate scan set: a positive-gain
        move toward a higher partition requires a neighbor there.
        """
        self._check_partition(partition)
        return self._boundary_high[partition]

    def boundary_toward_lower(self, partition: int) -> Set[int]:
        """Stage-2 counterpart of :meth:`boundary_toward_higher`."""
        self._check_partition(partition)
        return self._boundary_low[partition]

    def boundary_sizes(self) -> List[int]:
        return [
            len(high | low)
            for high, low in zip(self._boundary_high, self._boundary_low)
        ]

    def selection_view(
        self, partition: int
    ) -> Tuple[Dict[int, float], Dict[int, Dict[int, int]]]:
        """(vertex weights, neighbor counters) readable for ``partition``'s
        hosted vertices — the raw maps Algorithm 1 evaluates, exposed so
        the selection hot loop can use plain dict lookups (do not mutate).
        The centralized store shares one map across partitions; the
        sharded store returns the hosting shard's local maps.
        """
        self._check_partition(partition)
        return self._vertex_weights, self._neighbor_counts

    def vertices(self) -> Iterator[int]:
        return iter(self._vertex_partition)

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_partition)

    # ------------------------------------------------------------------
    # Capacity management (heterogeneous and elastic clusters)
    # ------------------------------------------------------------------
    @property
    def uniform_capacity(self) -> bool:
        """True while every partition has the default capacity 1.0 —
        balance queries then take the exact historical code path."""
        return self._uniform_capacity

    def capacity_of(self, partition: int) -> float:
        self._check_partition(partition)
        return self.capacities[partition]

    def set_capacity(self, partition: int, capacity: float) -> None:
        """Change one partition's relative capacity (0 = draining)."""
        self._check_partition(partition)
        check_capacity(capacity)
        self.capacities[partition] = capacity
        self._uniform_capacity = is_uniform_capacity(self.capacities)

    def add_partition(self, capacity: float = 1.0) -> int:
        """Grow the cluster by one (initially empty) partition.

        Returns the new partition's ID.  All derived structures — the
        weight vector, membership and directional boundary sets — gain an
        empty slot; existing vertices' high/low boundary classification
        is unaffected because nobody has a neighbor there yet.
        """
        check_capacity(capacity)
        partition = self.num_partitions
        self.num_partitions += 1
        self.partition_weights.append(0.0)
        self.capacities.append(capacity)
        self._members.append(set())
        self._boundary_high.append(set())
        self._boundary_low.append(set())
        self._weights_dirty = True
        self._uniform_capacity = is_uniform_capacity(self.capacities)
        return partition

    def total_weight(self) -> float:
        if self._weights_dirty:
            self._refresh_weight_cache()
        return self._cached_total_weight

    def balance_targets(self) -> List[float]:
        """Capacity-weighted target weight per partition (fresh list)."""
        return capacity_targets(self.total_weight(), self.capacities)

    # ------------------------------------------------------------------
    # Balance queries (Algorithm 1 lines 2, 5 and 11)
    # ------------------------------------------------------------------
    def _refresh_weight_cache(self) -> None:
        # Same expressions as the historical per-call computation, so the
        # memoized values are bit-identical to a fresh sum()/max().
        self._cached_total_weight = sum(self.partition_weights)
        self._cached_max_weight = max(self.partition_weights)
        self._weights_dirty = False

    def average_weight(self) -> float:
        if self._weights_dirty:
            self._refresh_weight_cache()
        return self._cached_total_weight / self.num_partitions

    def imbalance_factor(self, partition: int, weight_delta: float = 0.0) -> float:
        """Ratio of (partition weight + delta) to its balance target.

        ``weight_delta`` expresses the hypotheticals of Algorithm 1:
        ``imbalance_factor(P - {v})`` passes ``-w(v)`` and
        ``imbalance_factor(P + {v})`` passes ``+w(v)``.  Total system
        weight — and hence every target — is unchanged by migrations.
        With uniform capacities the target is the plain average weight
        (the historical expression, kept byte-identical); otherwise it is
        the capacity-weighted share from :func:`capacity_targets`.
        """
        self._check_partition(partition)
        if self._uniform_capacity:
            average = self.average_weight()
            if average == 0:
                return 1.0
            return (self.partition_weights[partition] + weight_delta) / average
        target = capacity_targets(self.total_weight(), self.capacities)[partition]
        return weighted_imbalance(
            self.partition_weights[partition] + weight_delta, target
        )

    def is_overloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) > epsilon

    def is_underloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) < 2.0 - epsilon

    def max_imbalance(self) -> float:
        if self._uniform_capacity:
            average = self.average_weight()
            if average == 0:
                return 1.0
            return self._cached_max_weight / average
        targets = self.balance_targets()
        return max(
            weighted_imbalance(weight, target)
            for weight, target in zip(self.partition_weights, targets)
        )

    # ------------------------------------------------------------------
    # Derived whole-system metrics (for instrumentation, not the algorithm)
    # ------------------------------------------------------------------
    def edge_cut(self) -> int:
        """Edge-cut from the incremental counter: sum d_ex(v) / 2.  O(1)."""
        return self._total_external // 2

    def to_partitioning(self) -> Partitioning:
        """Materialize the current assignment as a Partitioning object."""
        partitioning = Partitioning(self.num_partitions)
        for vertex, partition in self._vertex_partition.items():
            partitioning.assign(vertex, partition)
        return partitioning

    def ingest_counts(self, vertex: int, counts: Dict[int, int]) -> None:
        """Bulk-install a vertex's counter record (shard materialization).

        Replaces the vertex's sparse counters wholesale while keeping the
        external-degree total and boundary sets consistent.
        """
        home = self.partition_of(vertex)
        old_ext = self._ext_high[vertex] + self._ext_low[vertex]
        self._neighbor_counts[vertex] = {
            partition: count for partition, count in counts.items() if count
        }
        new_high = 0
        new_low = 0
        for partition, count in counts.items():
            if partition > home:
                new_high += count
            elif partition < home:
                new_low += count
        self._total_external += new_high + new_low - old_ext
        self._ext_high[vertex] = new_high
        self._ext_low[vertex] = new_low
        if new_high:
            self._boundary_high[home].add(vertex)
        else:
            self._boundary_high[home].discard(vertex)
        if new_low:
            self._boundary_low[home].add(vertex)
        else:
            self._boundary_low[home].discard(vertex)

    def memory_entries(self) -> Tuple[int, int]:
        """(counter entries, weight entries) actually stored.

        Theorem 2 bounds the amortized counter entries by n + Theta(alpha);
        tests verify this against the sparse representation.
        """
        counter_entries = sum(len(c) for c in self._neighbor_counts.values())
        return counter_entries, self.num_partitions

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise PartitioningError(
                f"partition {partition} out of range [0, {self.num_partitions})"
            )

"""Per-server sharding of the auxiliary data (the paper's actual layout).

"Each partition collects and stores aggregate vertex information relevant
to only the local vertices.  Moreover, the auxiliary data includes the
total weight of all partitions, i.e., in doing repartitioning, each
server knows the total weight of all other partitions" (Section 3.1).

:class:`ShardedAuxiliaryData` realizes exactly that layout:

* one :class:`AuxiliaryShard` per server, holding counters and weights
  for *its hosted vertices only*;
* a replicated partition-weight vector, refreshed by a weight *gossip*
  that models the servers broadcasting their aggregate weight;
* logical migration sends the vertex's auxiliary record to the target
  shard and forwards counter updates to each neighbor's hosting shard —
  the messages the real system exchanges.

The class is interface-compatible with
:class:`~repro.core.auxiliary.AuxiliaryData`, so the
:class:`~repro.core.repartitioner.LightweightRepartitioner` runs on it
unchanged; the test suite verifies that sharded and centralized runs
produce identical results, which is the substance of the paper's claim
that the algorithm needs no global state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.core.auxiliary import AuxiliaryData
from repro.exceptions import PartitioningError, VertexNotFoundError
from repro.graph.adjacency import SocialGraph
from repro.partitioning.base import Partitioning


class AuxiliaryShard:
    """One server's slice: counters + weights for hosted vertices only."""

    __slots__ = ("server_id", "num_partitions", "vertex_weights", "neighbor_counts")

    def __init__(self, server_id: int, num_partitions: int):
        self.server_id = server_id
        self.num_partitions = num_partitions
        self.vertex_weights: Dict[int, float] = {}
        self.neighbor_counts: Dict[int, Dict[int, int]] = {}

    @property
    def local_weight(self) -> float:
        return sum(self.vertex_weights.values())

    def host(self, vertex: int, weight: float, counts: Dict[int, int]) -> None:
        if vertex in self.vertex_weights:
            raise PartitioningError(
                f"vertex {vertex} already hosted on shard {self.server_id}"
            )
        self.vertex_weights[vertex] = weight
        self.neighbor_counts[vertex] = dict(counts)

    def evict(self, vertex: int) -> Tuple[float, Dict[int, int]]:
        """Hand the vertex's auxiliary record to a migration message."""
        try:
            weight = self.vertex_weights.pop(vertex)
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        return weight, self.neighbor_counts.pop(vertex)

    def bump(self, vertex: int, partition: int, delta: int) -> None:
        counts = self.neighbor_counts[vertex]
        value = counts.get(partition, 0) + delta
        if value < 0:
            raise PartitioningError(
                f"negative neighbor count for vertex {vertex} on shard "
                f"{self.server_id}"
            )
        if value == 0:
            counts.pop(partition, None)
        else:
            counts[partition] = value


class ShardedAuxiliaryData:
    """Drop-in AuxiliaryData with per-server shards + weight gossip."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise PartitioningError("need at least one partition")
        self.num_partitions = num_partitions
        self.shards: List[AuxiliaryShard] = [
            AuxiliaryShard(server_id, num_partitions)
            for server_id in range(num_partitions)
        ]
        self._home: Dict[int, int] = {}
        #: the replicated aggregate-weight vector every server holds
        self.partition_weights: List[float] = [0.0] * num_partitions
        #: instrumentation: migration/update messages between shards
        self.messages_sent = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: SocialGraph, partitioning: Partitioning
    ) -> "ShardedAuxiliaryData":
        aux = cls(partitioning.num_partitions)
        for vertex in graph.vertices():
            aux.add_vertex(
                vertex, partitioning.partition_of(vertex), graph.weight(vertex)
            )
        for u, v in graph.edges():
            aux.add_edge(u, v)
        return aux

    def _shard_of(self, vertex: int) -> AuxiliaryShard:
        try:
            return self.shards[self._home[vertex]]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def gossip_weights(self) -> None:
        """Every server broadcasts its aggregate weight (the mechanism by
        which each server 'knows the total weight of all partitions')."""
        self.partition_weights = [shard.local_weight for shard in self.shards]
        self.messages_sent += self.num_partitions * (self.num_partitions - 1)

    # ------------------------------------------------------------------
    # Maintenance driven by request execution
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, partition: int, weight: float) -> None:
        if vertex in self._home:
            raise PartitioningError(f"vertex {vertex} already tracked")
        self._check_partition(partition)
        self.shards[partition].host(vertex, weight, {})
        self._home[vertex] = partition
        self.partition_weights[partition] += weight

    def remove_vertex(self, vertex: int) -> None:
        shard = self._shard_of(vertex)
        if any(shard.neighbor_counts[vertex].values()):
            raise PartitioningError(
                f"vertex {vertex} still has incident edges; remove them first"
            )
        weight, _ = shard.evict(vertex)
        self.partition_weights[shard.server_id] -= weight
        del self._home[vertex]

    def add_edge(self, u: int, v: int) -> None:
        pu, pv = self.partition_of(u), self.partition_of(v)
        self.shards[pu].bump(u, pv, +1)
        self.shards[pv].bump(v, pu, +1)
        if pu != pv:
            self.messages_sent += 1  # cross-server counter update

    def remove_edge(self, u: int, v: int) -> None:
        pu, pv = self.partition_of(u), self.partition_of(v)
        self.shards[pu].bump(u, pv, -1)
        self.shards[pv].bump(v, pu, -1)
        if pu != pv:
            self.messages_sent += 1

    def add_weight(self, vertex: int, delta: float) -> None:
        shard = self._shard_of(vertex)
        shard.vertex_weights[vertex] += delta
        self.partition_weights[shard.server_id] += delta

    def set_weight(self, vertex: int, weight: float) -> None:
        self.add_weight(vertex, weight - self.weight_of(vertex))

    def decay_weights(self, factor: float, floor: float = 1.0) -> None:
        if not 0.0 < factor <= 1.0:
            raise PartitioningError(f"decay factor must be in (0, 1], got {factor}")
        for shard in self.shards:
            for vertex, weight in shard.vertex_weights.items():
                shard.vertex_weights[vertex] = max(floor, weight * factor)
        self.gossip_weights()

    # ------------------------------------------------------------------
    # Logical migration: the auxiliary record travels between shards
    # ------------------------------------------------------------------
    def apply_move(self, vertex: int, target: int, neighbors: Iterable[int]) -> int:
        self._check_partition(target)
        source = self.partition_of(vertex)
        if source == target:
            return source
        weight, counts = self.shards[source].evict(vertex)
        self.shards[target].host(vertex, weight, counts)
        self._home[vertex] = target
        self.partition_weights[source] -= weight
        self.partition_weights[target] += weight
        self.messages_sent += 1  # the migrated auxiliary record
        for nbr in neighbors:
            shard = self._shard_of(nbr)
            shard.bump(nbr, source, -1)
            shard.bump(nbr, target, +1)
            if shard.server_id not in (source, target):
                self.messages_sent += 1  # forwarded counter update
        return source

    # ------------------------------------------------------------------
    # Queries used by Algorithm 1 (all answerable by one shard + the
    # replicated weight vector)
    # ------------------------------------------------------------------
    def partition_of(self, vertex: int) -> int:
        try:
            return self._home[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def weight_of(self, vertex: int) -> float:
        return self._shard_of(vertex).vertex_weights[vertex]

    def neighbor_counts(self, vertex: int) -> Dict[int, int]:
        return self._shard_of(vertex).neighbor_counts[vertex]

    def neighbor_count(self, vertex: int, partition: int) -> int:
        self._check_partition(partition)
        return self.neighbor_counts(vertex).get(partition, 0)

    def degree(self, vertex: int) -> int:
        return sum(self.neighbor_counts(vertex).values())

    def external_degree(self, vertex: int) -> int:
        home = self.partition_of(vertex)
        return sum(
            count
            for partition, count in self.neighbor_counts(vertex).items()
            if partition != home
        )

    def vertices_in(self, partition: int) -> Set[int]:
        self._check_partition(partition)
        return set(self.shards[partition].vertex_weights)

    def vertices(self) -> Iterator[int]:
        return iter(self._home)

    @property
    def num_vertices(self) -> int:
        return len(self._home)

    # ------------------------------------------------------------------
    # Balance queries
    # ------------------------------------------------------------------
    def average_weight(self) -> float:
        return sum(self.partition_weights) / self.num_partitions

    def imbalance_factor(self, partition: int, weight_delta: float = 0.0) -> float:
        self._check_partition(partition)
        average = self.average_weight()
        if average == 0:
            return 1.0
        return (self.partition_weights[partition] + weight_delta) / average

    def is_overloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) > epsilon

    def is_underloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) < 2.0 - epsilon

    def max_imbalance(self) -> float:
        average = self.average_weight()
        if average == 0:
            return 1.0
        return max(self.partition_weights) / average

    # ------------------------------------------------------------------
    def edge_cut(self) -> int:
        total_external = sum(
            self.external_degree(vertex) for vertex in self._home
        )
        return total_external // 2

    def to_partitioning(self) -> Partitioning:
        partitioning = Partitioning(self.num_partitions)
        for vertex, partition in self._home.items():
            partitioning.assign(vertex, partition)
        return partitioning

    def to_centralized(self) -> AuxiliaryData:
        """Materialize the equivalent centralized AuxiliaryData (tests)."""
        central = AuxiliaryData(self.num_partitions)
        for vertex, partition in self._home.items():
            central.add_vertex(vertex, partition, self.weight_of(vertex))
        for vertex in self._home:
            counts = self.neighbor_counts(vertex)
            for partition, count in counts.items():
                central._neighbor_counts[vertex][partition] = count
        return central

    def memory_entries(self) -> Tuple[int, int]:
        counter_entries = sum(
            len(counts)
            for shard in self.shards
            for counts in shard.neighbor_counts.values()
        )
        return counter_entries, self.num_partitions

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise PartitioningError(
                f"partition {partition} out of range [0, {self.num_partitions})"
            )

"""Per-server sharding of the auxiliary data (the paper's actual layout).

"Each partition collects and stores aggregate vertex information relevant
to only the local vertices.  Moreover, the auxiliary data includes the
total weight of all partitions, i.e., in doing repartitioning, each
server knows the total weight of all other partitions" (Section 3.1).

:class:`ShardedAuxiliaryData` realizes exactly that layout:

* one :class:`AuxiliaryShard` per server, holding counters and weights
  for *its hosted vertices only*;
* a replicated partition-weight vector, refreshed by a weight *gossip*
  that models the servers broadcasting their aggregate weight;
* logical migration sends the vertex's auxiliary record to the target
  shard and forwards counter updates to each neighbor's hosting shard —
  the messages the real system exchanges.

Each shard additionally maintains its own **directional boundary
sets** (hosted vertices with >= 1 neighbor on a higher-ID / lower-ID
server), per-vertex directional external-degree maps, a running
external-degree total and a cached aggregate weight — all
updated in the same O(1) steps that maintain the paper's counters, so
``edge_cut()``, ``average_weight()`` and ``max_imbalance()`` never sweep
the vertex set (see DESIGN.md, "Hot-path engineering").

The class is interface-compatible with
:class:`~repro.core.auxiliary.AuxiliaryData`, so the
:class:`~repro.core.repartitioner.LightweightRepartitioner` runs on it
unchanged; the test suite verifies that sharded and centralized runs
produce identical results, which is the substance of the paper's claim
that the algorithm needs no global state.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    KeysView,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.auxiliary import (
    AuxiliaryData,
    capacity_targets,
    check_capacity,
    check_decay_factor,
    decayed_weight,
    is_uniform_capacity,
    weighted_imbalance,
)
from repro.exceptions import PartitioningError, VertexNotFoundError
from repro.graph.compact import GraphRead
from repro.partitioning.base import Partitioning


class AuxiliaryShard:
    """One server's slice: counters + weights for hosted vertices only."""

    __slots__ = (
        "server_id",
        "num_partitions",
        "vertex_weights",
        "neighbor_counts",
        "boundary_high",
        "boundary_low",
        "ext_high",
        "ext_low",
        "total_external",
        "_local_weight",
        "heat_counts",
    )

    def __init__(self, server_id: int, num_partitions: int):
        self.server_id = server_id
        self.num_partitions = num_partitions
        self.vertex_weights: Dict[int, float] = {}
        self.neighbor_counts: Dict[int, Dict[int, int]] = {}
        #: hosted vertices with >= 1 neighbor on a higher-ID (resp.
        #: lower-ID) server — the stage-1 / stage-2 scan sets
        self.boundary_high: Set[int] = set()
        self.boundary_low: Set[int] = set()
        self.ext_high: Dict[int, int] = {}
        self.ext_low: Dict[int, int] = {}
        self.total_external = 0
        self._local_weight = 0.0
        #: per-hosted-vertex {partition: heat} — the weighted companions
        #: of neighbor_counts, populated only while heat is attached
        self.heat_counts: Dict[int, Dict[int, float]] = {}

    @property
    def local_weight(self) -> float:
        """Aggregate hosted weight, maintained incrementally.  O(1)."""
        return self._local_weight

    def host(self, vertex: int, weight: float, counts: Dict[int, int]) -> None:
        if vertex in self.vertex_weights:
            raise PartitioningError(
                f"vertex {vertex} already hosted on shard {self.server_id}"
            )
        self.vertex_weights[vertex] = weight
        self.neighbor_counts[vertex] = dict(counts)
        self._local_weight += weight
        high = 0
        low = 0
        for partition, count in counts.items():
            if partition > self.server_id:
                high += count
            elif partition < self.server_id:
                low += count
        self.ext_high[vertex] = high
        self.ext_low[vertex] = low
        self.total_external += high + low
        if high:
            self.boundary_high.add(vertex)
        if low:
            self.boundary_low.add(vertex)

    def evict(self, vertex: int) -> Tuple[float, Dict[int, int]]:
        """Hand the vertex's auxiliary record to a migration message."""
        try:
            weight = self.vertex_weights.pop(vertex)
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        self._local_weight -= weight
        self.total_external -= self.ext_high.pop(vertex) + self.ext_low.pop(vertex)
        self.boundary_high.discard(vertex)
        self.boundary_low.discard(vertex)
        self.heat_counts.pop(vertex, None)
        return weight, self.neighbor_counts.pop(vertex)

    def bump_weight(self, vertex: int, delta: float) -> None:
        self.vertex_weights[vertex] += delta
        self._local_weight += delta

    def bump(self, vertex: int, partition: int, delta: int) -> None:
        counts = self.neighbor_counts[vertex]
        value = counts.get(partition, 0) + delta
        if value < 0:
            raise PartitioningError(
                f"negative neighbor count for vertex {vertex} on shard "
                f"{self.server_id}"
            )
        if value == 0:
            counts.pop(partition, None)
        else:
            counts[partition] = value
        if partition > self.server_id:
            ext = self.ext_high[vertex] + delta
            self.ext_high[vertex] = ext
            self.total_external += delta
            if ext == 0:
                self.boundary_high.discard(vertex)
            elif ext == delta:  # first neighbor on a higher server
                self.boundary_high.add(vertex)
        elif partition < self.server_id:
            ext = self.ext_low[vertex] + delta
            self.ext_low[vertex] = ext
            self.total_external += delta
            if ext == 0:
                self.boundary_low.discard(vertex)
            elif ext == delta:  # first neighbor on a lower server
                self.boundary_low.add(vertex)

    def decay(self, factor: float, floor: float) -> None:
        """Apply the shared aging rule locally and rebuild the aggregate.

        The aggregate is re-summed in sorted-vertex order — the same
        order the centralized store uses — so the gossiped weight vector
        matches the centralized one exactly.
        """
        weights = self.vertex_weights
        for vertex, weight in weights.items():
            weights[vertex] = decayed_weight(weight, factor, floor)
        self._local_weight = sum(weights[vertex] for vertex in sorted(weights))


class ShardedAuxiliaryData:
    """Drop-in AuxiliaryData with per-server shards + weight gossip."""

    def __init__(
        self, num_partitions: int, capacities: Optional[List[float]] = None
    ):
        if num_partitions < 1:
            raise PartitioningError("need at least one partition")
        self.num_partitions = num_partitions
        self.shards: List[AuxiliaryShard] = [
            AuxiliaryShard(server_id, num_partitions)
            for server_id in range(num_partitions)
        ]
        self._home: Dict[int, int] = {}
        #: the replicated aggregate-weight vector every server holds
        self.partition_weights: List[float] = [0.0] * num_partitions
        #: replicated relative-capacity vector (gossiped alongside the
        #: weights; capacity changes are rare control-plane events)
        if capacities is None:
            capacities = [1.0] * num_partitions
        elif len(capacities) != num_partitions:
            raise PartitioningError(
                f"{len(capacities)} capacities for {num_partitions} partitions"
            )
        for capacity in capacities:
            check_capacity(capacity)
        self.capacities: List[float] = list(capacities)
        self._uniform_capacity = is_uniform_capacity(self.capacities)
        #: instrumentation: migration/update messages between shards
        self.messages_sent = 0
        #: canonicalized observed-traffic edge heat; None = unheated.
        #: Heat updates piggyback on the counter-update messages already
        #: counted, so attaching heat adds no message traffic.
        self._edge_heat: Optional[Dict[Tuple[int, int], float]] = None
        self._weights_dirty = True
        self._cached_total_weight = 0.0
        self._cached_max_weight = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: GraphRead, partitioning: Partitioning
    ) -> "ShardedAuxiliaryData":
        aux = cls(partitioning.num_partitions)
        for vertex in graph.vertices():
            aux.add_vertex(
                vertex, partitioning.partition_of(vertex), graph.weight_of(vertex)
            )
        for u, v in graph.edges():
            aux.add_edge(u, v)
        return aux

    def _shard_of(self, vertex: int) -> AuxiliaryShard:
        try:
            return self.shards[self._home[vertex]]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def gossip_weights(self) -> None:
        """Every server broadcasts its aggregate weight (the mechanism by
        which each server 'knows the total weight of all partitions')."""
        self.partition_weights = [shard.local_weight for shard in self.shards]
        self.messages_sent += self.num_partitions * (self.num_partitions - 1)
        self._weights_dirty = True

    # ------------------------------------------------------------------
    # Maintenance driven by request execution
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, partition: int, weight: float) -> None:
        if vertex in self._home:
            raise PartitioningError(f"vertex {vertex} already tracked")
        self._check_partition(partition)
        self.shards[partition].host(vertex, weight, {})
        self._home[vertex] = partition
        self.partition_weights[partition] += weight
        self._weights_dirty = True

    def remove_vertex(self, vertex: int) -> None:
        shard = self._shard_of(vertex)
        if any(shard.neighbor_counts[vertex].values()):
            raise PartitioningError(
                f"vertex {vertex} still has incident edges; remove them first"
            )
        weight, _ = shard.evict(vertex)
        self.partition_weights[shard.server_id] -= weight
        self._weights_dirty = True
        del self._home[vertex]

    def add_edge(self, u: int, v: int) -> None:
        pu, pv = self.partition_of(u), self.partition_of(v)
        self.shards[pu].bump(u, pv, +1)
        self.shards[pv].bump(v, pu, +1)
        if pu != pv:
            self.messages_sent += 1  # cross-server counter update

    def remove_edge(self, u: int, v: int) -> None:
        pu, pv = self.partition_of(u), self.partition_of(v)
        self.shards[pu].bump(u, pv, -1)
        self.shards[pv].bump(v, pu, -1)
        if pu != pv:
            self.messages_sent += 1
        if self._edge_heat:
            heat = self._edge_heat.pop((u, v) if u <= v else (v, u), 0.0)
            if heat:
                self._drop_heat(u, pu, pv, heat)
                self._drop_heat(v, pv, pu, heat)

    def add_weight(self, vertex: int, delta: float) -> None:
        shard = self._shard_of(vertex)
        shard.bump_weight(vertex, delta)
        self.partition_weights[shard.server_id] += delta
        self._weights_dirty = True

    def set_weight(self, vertex: int, weight: float) -> None:
        self.add_weight(vertex, weight - self.weight_of(vertex))

    def decay_weights(self, factor: float, floor: float = 1.0) -> None:
        """Shared decay semantics: every shard ages its hosted weights
        locally, then the refreshed aggregates are gossiped so the
        replicated vector — floors included — matches the centralized
        implementation exactly."""
        check_decay_factor(factor)
        for shard in self.shards:
            shard.decay(factor, floor)
        self.gossip_weights()

    # ------------------------------------------------------------------
    # Logical migration: the auxiliary record travels between shards
    # ------------------------------------------------------------------
    def apply_move(self, vertex: int, target: int, neighbors: Iterable[int]) -> int:
        self._check_partition(target)
        source = self.partition_of(vertex)
        if source == target:
            return source
        heat_record = self.shards[source].heat_counts.pop(vertex, None)
        weight, counts = self.shards[source].evict(vertex)
        self.shards[target].host(vertex, weight, counts)
        if heat_record is not None:
            # The vertex's weighted counters ride the same migration
            # message as its integer record.
            self.shards[target].heat_counts[vertex] = heat_record
        self._home[vertex] = target
        self.partition_weights[source] -= weight
        self.partition_weights[target] += weight
        self._weights_dirty = True
        self.messages_sent += 1  # the migrated auxiliary record
        # Per-neighbor counter transfer, inlined from AuxiliaryShard.bump:
        # a neighbor hosted on the source gains an external neighbor, one
        # on the target loses one, and anywhere else the totals cancel —
        # though the edge may swap direction when source and target
        # straddle the neighbor's home (those shards still receive a
        # forwarded update message either way).
        home_map = self._home
        shards = self.shards
        edge_heat = self._edge_heat
        for nbr in neighbors:
            home = home_map[nbr]
            shard = shards[home]
            nbr_counts = shard.neighbor_counts[nbr]
            value = nbr_counts.get(source, 0) - 1
            if value < 0:
                raise PartitioningError(
                    f"negative neighbor count for vertex {nbr} on shard "
                    f"{home}"
                )
            if value == 0:
                del nbr_counts[source]
            else:
                nbr_counts[source] = value
            nbr_counts[target] = nbr_counts.get(target, 0) + 1
            if edge_heat is not None:
                # Weighted counters move in lockstep with the integer
                # ones: the neighbor's heat toward the source follows
                # the vertex to the target (same float steps as the
                # centralized implementation, so results stay identical).
                heat = edge_heat.get(
                    (vertex, nbr) if vertex <= nbr else (nbr, vertex)
                )
                if heat:
                    self._drop_heat(nbr, home, source, heat)
                    self._add_heat(nbr, home, target, heat)
            if home == source:
                if target > home:
                    ext = shard.ext_high[nbr] + 1
                    shard.ext_high[nbr] = ext
                    if ext == 1:
                        shard.boundary_high.add(nbr)
                else:
                    ext = shard.ext_low[nbr] + 1
                    shard.ext_low[nbr] = ext
                    if ext == 1:
                        shard.boundary_low.add(nbr)
                shard.total_external += 1
            elif home == target:
                if source > home:
                    ext = shard.ext_high[nbr] - 1
                    shard.ext_high[nbr] = ext
                    if ext == 0:
                        shard.boundary_high.discard(nbr)
                else:
                    ext = shard.ext_low[nbr] - 1
                    shard.ext_low[nbr] = ext
                    if ext == 0:
                        shard.boundary_low.discard(nbr)
                shard.total_external -= 1
            else:
                source_high = source > home
                if source_high != (target > home):
                    if source_high:
                        ext = shard.ext_high[nbr] - 1
                        shard.ext_high[nbr] = ext
                        if ext == 0:
                            shard.boundary_high.discard(nbr)
                        ext = shard.ext_low[nbr] + 1
                        shard.ext_low[nbr] = ext
                        if ext == 1:
                            shard.boundary_low.add(nbr)
                    else:
                        ext = shard.ext_low[nbr] - 1
                        shard.ext_low[nbr] = ext
                        if ext == 0:
                            shard.boundary_low.discard(nbr)
                        ext = shard.ext_high[nbr] + 1
                        shard.ext_high[nbr] = ext
                        if ext == 1:
                            shard.boundary_high.add(nbr)
                self.messages_sent += 1  # forwarded counter update
        return source

    # ------------------------------------------------------------------
    # Workload heat (observed-traffic weighting for the gain function)
    # ------------------------------------------------------------------
    #: shared empty heat map returned for unheated vertices (do not mutate)
    _NO_HEAT: Dict[int, float] = {}

    def attach_heat(self, edge_heat: Mapping[Tuple[int, int], float]) -> None:
        """Install observed-traffic edge heat on the hosting shards.

        Same contract as :meth:`AuxiliaryData.attach_heat`; each shard
        stores the weighted counters of its hosted vertices only, the
        layout the real system would use (heat is learned from local
        telemetry and moves with the migrated auxiliary record).
        """
        home_map = self._home
        canonical: Dict[Tuple[int, int], float] = {}
        for (u, v), heat in edge_heat.items():
            if heat <= 0.0 or u == v:
                continue
            if u > v:
                u, v = v, u
            if u not in home_map or v not in home_map:
                continue
            canonical[(u, v)] = canonical.get((u, v), 0.0) + heat
        for shard in self.shards:
            shard.heat_counts = {}
        shards = self.shards
        for (u, v), heat in canonical.items():
            pu, pv = home_map[u], home_map[v]
            counts_u = shards[pu].heat_counts.setdefault(u, {})
            counts_u[pv] = counts_u.get(pv, 0.0) + heat
            counts_v = shards[pv].heat_counts.setdefault(v, {})
            counts_v[pu] = counts_v.get(pu, 0.0) + heat
        self._edge_heat = canonical

    def detach_heat(self) -> None:
        """Drop the heat overlay; gain falls back to pure edge counts."""
        self._edge_heat = None
        for shard in self.shards:
            shard.heat_counts = {}

    @property
    def has_heat(self) -> bool:
        """True when a non-empty heat overlay is attached."""
        return bool(self._edge_heat)

    def heat_counts(self, vertex: int) -> Dict[int, float]:
        """Sparse {partition: heat} view from the hosting shard (do not
        mutate; empty when unheated)."""
        if self._edge_heat is None:
            if vertex not in self._home:
                raise VertexNotFoundError(vertex)
            return self._NO_HEAT
        return self._shard_of(vertex).heat_counts.get(vertex, self._NO_HEAT)

    def heat_selection_view(self, partition: int) -> Dict[int, Dict[int, float]]:
        """The hosting shard's per-vertex heat counters (do not mutate) —
        the weighted companion map of :meth:`selection_view`; vertices
        absent from it are unheated."""
        self._check_partition(partition)
        return self.shards[partition].heat_counts

    def _add_heat(self, vertex: int, home: int, partition: int, heat: float) -> None:
        counts = self.shards[home].heat_counts.setdefault(vertex, {})
        counts[partition] = counts.get(partition, 0.0) + heat

    def _drop_heat(self, vertex: int, home: int, partition: int, heat: float) -> None:
        heat_map = self.shards[home].heat_counts
        counts = heat_map.get(vertex)
        if counts is None:
            return
        value = counts.get(partition, 0.0) - heat
        # Same ulp-residue cleanup as the centralized implementation.
        if abs(value) < 1e-12:
            counts.pop(partition, None)
            if not counts:
                heat_map.pop(vertex, None)
        else:
            counts[partition] = value

    # ------------------------------------------------------------------
    # Queries used by Algorithm 1 (all answerable by one shard + the
    # replicated weight vector)
    # ------------------------------------------------------------------
    def partition_of(self, vertex: int) -> int:
        try:
            return self._home[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def weight_of(self, vertex: int) -> float:
        return self._shard_of(vertex).vertex_weights[vertex]

    def neighbor_counts(self, vertex: int) -> Dict[int, int]:
        return self._shard_of(vertex).neighbor_counts[vertex]

    def neighbor_count(self, vertex: int, partition: int) -> int:
        self._check_partition(partition)
        return self.neighbor_counts(vertex).get(partition, 0)

    def degree(self, vertex: int) -> int:
        return sum(self.neighbor_counts(vertex).values())

    def external_degree(self, vertex: int) -> int:
        """``d_ex(v)`` from the hosting shard's running maps.  O(1)."""
        shard = self._shard_of(vertex)
        return shard.ext_high[vertex] + shard.ext_low[vertex]

    def vertices_in(self, partition: int) -> KeysView[int]:
        """Stable view of a shard's hosted vertices (no copy; do not
        mutate), consistent with :meth:`AuxiliaryData.vertices_in`."""
        self._check_partition(partition)
        return self.shards[partition].vertex_weights.keys()

    def boundary_vertices(self, partition: int) -> Set[int]:
        """The shard's hosted vertices with external neighbors (fresh set)."""
        self._check_partition(partition)
        shard = self.shards[partition]
        return shard.boundary_high | shard.boundary_low

    def boundary_toward_higher(self, partition: int) -> Set[int]:
        """Stage-1 scan set: hosted vertices with >= 1 neighbor on a
        higher-ID server (do not mutate)."""
        self._check_partition(partition)
        return self.shards[partition].boundary_high

    def boundary_toward_lower(self, partition: int) -> Set[int]:
        """Stage-2 counterpart of :meth:`boundary_toward_higher`."""
        self._check_partition(partition)
        return self.shards[partition].boundary_low

    def boundary_sizes(self) -> List[int]:
        return [
            len(shard.boundary_high | shard.boundary_low)
            for shard in self.shards
        ]

    def selection_view(
        self, partition: int
    ) -> Tuple[Dict[int, float], Dict[int, Dict[int, int]]]:
        """The hosting shard's local (weights, counters) maps — everything
        Algorithm 1 reads about ``partition``'s vertices (do not mutate)."""
        self._check_partition(partition)
        shard = self.shards[partition]
        return shard.vertex_weights, shard.neighbor_counts

    def vertices(self) -> Iterator[int]:
        return iter(self._home)

    @property
    def num_vertices(self) -> int:
        return len(self._home)

    # ------------------------------------------------------------------
    # Capacity management (heterogeneous and elastic clusters)
    # ------------------------------------------------------------------
    @property
    def uniform_capacity(self) -> bool:
        """True while every partition has the default capacity 1.0 —
        balance queries then take the exact historical code path."""
        return self._uniform_capacity

    def capacity_of(self, partition: int) -> float:
        self._check_partition(partition)
        return self.capacities[partition]

    def set_capacity(self, partition: int, capacity: float) -> None:
        """Change one partition's relative capacity (0 = draining).

        Replicating the new vector to every server is one broadcast —
        the same channel the weight gossip uses.
        """
        self._check_partition(partition)
        check_capacity(capacity)
        self.capacities[partition] = capacity
        self._uniform_capacity = is_uniform_capacity(self.capacities)
        self.messages_sent += self.num_partitions - 1

    def add_partition(self, capacity: float = 1.0) -> int:
        """Grow the cluster by one (initially empty) shard.

        Returns the new partition's ID.  Existing shards' boundary sets
        are untouched: nobody has a neighbor on the new server yet, and
        the new server's ID is the highest so no vertex's high/low
        classification can change.
        """
        check_capacity(capacity)
        partition = self.num_partitions
        self.num_partitions += 1
        self.shards.append(AuxiliaryShard(partition, self.num_partitions))
        for shard in self.shards:
            shard.num_partitions = self.num_partitions
        self.partition_weights.append(0.0)
        self.capacities.append(capacity)
        self._weights_dirty = True
        self._uniform_capacity = is_uniform_capacity(self.capacities)
        self.messages_sent += self.num_partitions - 1  # membership gossip
        return partition

    def total_weight(self) -> float:
        if self._weights_dirty:
            self._refresh_weight_cache()
        return self._cached_total_weight

    def balance_targets(self) -> List[float]:
        """Capacity-weighted target weight per partition (fresh list)."""
        return capacity_targets(self.total_weight(), self.capacities)

    # ------------------------------------------------------------------
    # Balance queries
    # ------------------------------------------------------------------
    def _refresh_weight_cache(self) -> None:
        self._cached_total_weight = sum(self.partition_weights)
        self._cached_max_weight = max(self.partition_weights)
        self._weights_dirty = False

    def average_weight(self) -> float:
        if self._weights_dirty:
            self._refresh_weight_cache()
        return self._cached_total_weight / self.num_partitions

    def imbalance_factor(self, partition: int, weight_delta: float = 0.0) -> float:
        self._check_partition(partition)
        if self._uniform_capacity:
            average = self.average_weight()
            if average == 0:
                return 1.0
            return (self.partition_weights[partition] + weight_delta) / average
        target = capacity_targets(self.total_weight(), self.capacities)[partition]
        return weighted_imbalance(
            self.partition_weights[partition] + weight_delta, target
        )

    def is_overloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) > epsilon

    def is_underloaded(self, partition: int, epsilon: float) -> bool:
        return self.imbalance_factor(partition) < 2.0 - epsilon

    def max_imbalance(self) -> float:
        if self._uniform_capacity:
            average = self.average_weight()
            if average == 0:
                return 1.0
            return self._cached_max_weight / average
        targets = self.balance_targets()
        return max(
            weighted_imbalance(weight, target)
            for weight, target in zip(self.partition_weights, targets)
        )

    # ------------------------------------------------------------------
    def edge_cut(self) -> int:
        """Sum of per-shard external-degree totals / 2 — O(alpha), no
        vertex sweep (each server keeps its own running total)."""
        return sum(shard.total_external for shard in self.shards) // 2

    def to_partitioning(self) -> Partitioning:
        partitioning = Partitioning(self.num_partitions)
        for vertex, partition in self._home.items():
            partitioning.assign(vertex, partition)
        return partitioning

    def to_centralized(self) -> AuxiliaryData:
        """Materialize the equivalent centralized AuxiliaryData (tests)."""
        central = AuxiliaryData(self.num_partitions, capacities=self.capacities)
        for vertex, partition in self._home.items():
            central.add_vertex(vertex, partition, self.weight_of(vertex))
        for vertex in self._home:
            central.ingest_counts(vertex, self.neighbor_counts(vertex))
        if self._edge_heat is not None:
            central.attach_heat(self._edge_heat)
        return central

    def memory_entries(self) -> Tuple[int, int]:
        counter_entries = sum(
            len(counts)
            for shard in self.shards
            for counts in shard.neighbor_counts.values()
        )
        return counter_entries, self.num_partitions

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise PartitioningError(
                f"partition {partition} out of range [0, {self.num_partitions})"
            )

"""Algorithm 2: the lightweight repartitioner's iterative first phase.

Each *iteration* runs two *stages*.  In stage 1 vertices may migrate only
from lower-ID partitions to higher-ID partitions; stage 2 allows only the
opposite direction.  Within a stage every partition independently (in the
real system: in parallel; here: against a common auxiliary-data snapshot)
selects its migration candidates via Algorithm 1, keeps the top-k by gain,
and logically migrates them — only auxiliary records move.  The phase ends
when an entire iteration selects no candidate; the resulting set of moves
is then handed to the physical-migration phase (:mod:`repro.core.migration`
and :mod:`repro.cluster.migration_executor`).

Hot-path engineering (DESIGN.md): selection freezes the stage's average
weight once (migrations never change the total), scans only the source
partition's *boundary set* unless the source is overloaded (interior
vertices can then be shed at negative gain, so the full member set is
admissible), and may fan the per-partition selection out over a thread
pool via :class:`ParallelSelectionStrategy` — selection is read-only
against the snapshot, matching the paper's "each partition selects its
candidates in parallel".  All three optimizations preserve the exact move
sequence of the straightforward implementation.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.auxiliary import AuxiliaryData, weighted_imbalance
from repro.core.candidates import (
    STAGE_ANY_DIRECTION,
    STAGE_HIGH_TO_LOW,
    STAGE_LOW_TO_HIGH,
    MigrationCandidate,
)
from repro.core.config import RepartitionerConfig
from repro.exceptions import PartitioningError
from repro.graph.compact import GraphRead
from repro.partitioning.base import Partitioning
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class IterationStats:
    """Instrumentation for one iteration of the first phase."""

    iteration: int
    migrations: int
    edge_cut: int
    max_imbalance: float


@dataclass
class RepartitionResult:
    """Outcome of a full phase-1 run.

    ``moves`` maps each vertex that ended up on a new partition to its
    ``(original, final)`` partition pair — the input to physical migration.
    ``history`` records per-iteration stats (Table 2 / Figure 11 inputs).
    """

    converged: bool
    iterations: int
    initial_edge_cut: int
    final_edge_cut: int
    initial_imbalance: float
    final_imbalance: float
    moves: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    history: List[IterationStats] = field(default_factory=list)
    #: True when the run stopped on the plateau rule (edge-cut stable and
    #: balance valid) rather than on an empty candidate set
    stalled: bool = False

    @property
    def total_logical_migrations(self) -> int:
        """Logical moves performed, counting repeats of the same vertex."""
        return sum(stats.migrations for stats in self.history)

    @property
    def vertices_moved(self) -> int:
        """Vertices whose final partition differs from their original one."""
        return len(self.moves)


class SerialSelectionStrategy:
    """Select each partition's candidates one after the other (default)."""

    def select(
        self, select_one: Callable[[int], List[MigrationCandidate]], sources: range
    ) -> List[List[MigrationCandidate]]:
        return [select_one(source) for source in sources]

    def close(self) -> None:
        pass


class ParallelSelectionStrategy:
    """Fan per-partition selection out over a thread pool.

    The paper's stage semantics — every partition selects against the same
    auxiliary-data snapshot, moves apply only afterwards — make selection
    embarrassingly parallel: it reads the snapshot and writes nothing.
    Results are gathered in source-partition order, so the applied move
    sequence is identical to the serial strategy's.
    """

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def select(
        self, select_one: Callable[[int], List[MigrationCandidate]], sources: range
    ) -> List[List[MigrationCandidate]]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="hermes-select",
            )
        return list(self._pool.map(select_one, sources))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class LightweightRepartitioner:
    """The paper's dynamic repartitioner (Sections 3.1-3.3).

    The instance is stateless between runs; all mutable state lives in the
    :class:`AuxiliaryData` passed to :meth:`run`.

    Example
    -------
    >>> from repro.graph import orkut_like
    >>> from repro.partitioning import HashPartitioner
    >>> dataset = orkut_like(n=300, seed=1)
    >>> partitioning = HashPartitioner().partition(dataset.graph, 4)
    >>> result = LightweightRepartitioner().run(dataset.graph, partitioning)
    >>> result.final_edge_cut <= result.initial_edge_cut
    True
    """

    def __init__(self, config: Optional[RepartitionerConfig] = None):
        self.config = config or RepartitionerConfig()

    def _make_selection_strategy(self):
        if self.config.parallel_selection:
            return ParallelSelectionStrategy(self.config.selection_workers)
        return SerialSelectionStrategy()

    # ------------------------------------------------------------------
    def run(
        self,
        graph: GraphRead,
        partitioning: Partitioning,
        aux: Optional[AuxiliaryData] = None,
        on_iteration: Optional[Callable[[IterationStats], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> RepartitionResult:
        """Run phase 1 to convergence, mutating ``partitioning`` in place.

        Parameters
        ----------
        graph:
            Used only for two things the hosting servers know locally:
            adjacency lists of migrating vertices (to forward counter
            updates) and initial bootstrap when ``aux`` is None.  The
            candidate selection itself reads nothing but ``aux``.
        aux:
            Pre-maintained auxiliary data; built from the graph when absent.
        on_iteration:
            Optional progress callback.
        telemetry:
            Optional telemetry hub: per-iteration migration/edge-cut/
            imbalance series as events + gauges and a ``repartition.phase1``
            span tree.  Defaults to the shared null hub (no overhead).
        """
        if aux is None:
            aux = AuxiliaryData.from_graph(graph, partitioning)
        elif aux.num_partitions != partitioning.num_partitions:
            raise PartitioningError(
                "auxiliary data and partitioning disagree on partition count"
            )
        telemetry = telemetry or NULL_TELEMETRY

        original = {v: partitioning.partition_of(v) for v in graph.vertices()}
        result = RepartitionResult(
            converged=False,
            iterations=0,
            initial_edge_cut=aux.edge_cut(),
            final_edge_cut=0,
            initial_imbalance=aux.max_imbalance(),
            final_imbalance=0.0,
        )

        stages = (
            (STAGE_LOW_TO_HIGH, STAGE_HIGH_TO_LOW)
            if self.config.two_stage
            else (STAGE_ANY_DIRECTION,)
        )
        k = self.config.effective_k(graph.num_vertices)
        selection = self._make_selection_strategy()

        run_span = telemetry.span(
            "repartition.phase1",
            partitions=aux.num_partitions,
            k=k,
            initial_edge_cut=result.initial_edge_cut,
        )
        migrations_counter = telemetry.counter(
            "repartitioner_logical_migrations_total",
            "logical moves performed in phase 1 (repeats included)",
        )
        cut_gauge = telemetry.gauge(
            "repartitioner_edge_cut", "edge-cut after the latest iteration"
        )
        imbalance_gauge = telemetry.gauge(
            "repartitioner_imbalance", "max imbalance after the latest iteration"
        )
        try:
            best_cut = result.initial_edge_cut
            best_cut_iteration = 0
            previous_cut = result.initial_edge_cut
            for iteration in range(1, self.config.max_iterations + 1):
                iter_span = telemetry.span(
                    "repartition.iteration", iteration=iteration
                )
                migrations = 0
                for stage in stages:
                    migrations += self._run_stage(
                        graph, partitioning, aux, stage, k, selection
                    )
                stats = IterationStats(
                    iteration=iteration,
                    migrations=migrations,
                    edge_cut=aux.edge_cut(),
                    max_imbalance=aux.max_imbalance(),
                )
                result.history.append(stats)
                result.iterations = iteration
                migrations_counter.inc(migrations)
                cut_gauge.set(stats.edge_cut)
                imbalance_gauge.set(stats.max_imbalance)
                telemetry.event(
                    "repartition_iteration",
                    iteration=iteration,
                    migrations=migrations,
                    edge_cut=stats.edge_cut,
                    max_imbalance=stats.max_imbalance,
                    gain=previous_cut - stats.edge_cut,
                )
                previous_cut = stats.edge_cut
                iter_span.set_attribute("migrations", migrations)
                iter_span.set_attribute("edge_cut", stats.edge_cut)
                iter_span.finish()
                if on_iteration is not None:
                    on_iteration(stats)
                if migrations == 0:
                    result.converged = True
                    break
                if stats.edge_cut < best_cut:
                    best_cut = stats.edge_cut
                    best_cut_iteration = iteration
                if self._stalled(stats, iteration, best_cut_iteration):
                    result.stalled = True
                    break
        finally:
            selection.close()

        result.final_edge_cut = aux.edge_cut()
        result.final_imbalance = aux.max_imbalance()
        run_span.set_attribute("iterations", result.iterations)
        run_span.set_attribute("final_edge_cut", result.final_edge_cut)
        run_span.set_attribute("converged", result.converged)
        run_span.finish()
        result.moves = {
            vertex: (source, partitioning.partition_of(vertex))
            for vertex, source in original.items()
            if partitioning.partition_of(vertex) != source
        }
        return result

    def _stalled(
        self, stats: IterationStats, iteration: int, best_cut_iteration: int
    ) -> bool:
        """Plateau rule: balance is valid and the cut stopped improving.

        Guards against the balance-shed/cut-restore limit cycles that the
        snapshot-parallel per-stage selection can enter near the epsilon
        boundary (the paper bounds these only through small k).
        """
        if self.config.stall_iterations is None:
            return False
        if stats.max_imbalance > self.config.epsilon:
            return False
        return iteration - best_cut_iteration >= self.config.stall_iterations

    # ------------------------------------------------------------------
    def _run_stage(
        self,
        graph: GraphRead,
        partitioning: Partitioning,
        aux: AuxiliaryData,
        stage: int,
        k: int,
        selection: Optional[SerialSelectionStrategy] = None,
    ) -> int:
        """One stage: parallel per-partition selection, then apply moves.

        Every partition evaluates its candidates against the same snapshot
        of the auxiliary data (matching the paper's parallel execution:
        "the algorithm does not know the target partition of other
        vertices"), selects its top-k by gain, and all chosen vertices then
        migrate logically.  The average weight is frozen once per stage:
        logical migration moves weight between partitions but never
        changes the total, and no moves apply until selection finishes.
        """
        if selection is None:
            selection = SerialSelectionStrategy()
        if getattr(aux, "uniform_capacity", True):
            average = aux.average_weight()

            def select_one(source: int) -> List[MigrationCandidate]:
                return self._select_candidates(aux, source, stage, k, average)

        else:
            # Heterogeneous capacities: freeze the capacity-weighted
            # targets once per stage, exactly as the average is frozen on
            # the uniform path (migrations never change the total weight).
            targets = aux.balance_targets()

            def select_one(source: int) -> List[MigrationCandidate]:
                return self._select_candidates_capacity(
                    aux, source, stage, k, targets
                )

        per_source = selection.select(select_one, range(aux.num_partitions))
        chosen = [candidate for batch in per_source for candidate in batch]
        for candidate in chosen:
            # Current partition may have changed only if the same vertex was
            # selected twice, which per-partition selection rules out.
            aux.apply_move(
                candidate.vertex, candidate.target, graph.neighbors(candidate.vertex)
            )
            partitioning.move(candidate.vertex, candidate.target)
        return len(chosen)

    def _select_candidates(
        self,
        aux: AuxiliaryData,
        source: int,
        stage: int,
        k: int,
        average: Optional[float] = None,
    ) -> List[MigrationCandidate]:
        """Algorithm 2 lines 4-9 for one source partition.

        Returns at most ``k`` candidates, the ones with maximum gain.
        This is the selection hot loop, so Algorithm 1 (the per-vertex
        target choice, reference implementation in
        :func:`~repro.core.candidates.get_target_partition`) is inlined
        against the raw weight/counter maps with the stage's frozen
        average.  Only the boundary set is scanned unless the source is
        overloaded: an interior vertex's best gain is ``-d_v(source) <= 0``,
        which Algorithm 1 only admits for overload shedding.  The inlined
        target scan picks the maximum-gain balance-admissible target,
        lowest partition ID on ties — provably the same winner as the
        reference's ascending scan — and its balance tests reuse the
        historical ``imbalance_factor`` float expressions term for term,
        so the selected candidates are bit-identical.
        """
        if not getattr(aux, "uniform_capacity", True):
            # Heterogeneous capacities select against capacity-weighted
            # targets in their own method, keeping this static hot loop's
            # float arithmetic untouched (capacity=1 everywhere stays
            # bit-identical to the pinned fixture).
            return self._select_candidates_capacity(
                aux, source, stage, k, aux.balance_targets()
            )
        alpha = self.config.workload_alpha
        if alpha > 0.0 and getattr(aux, "has_heat", False):
            # Workload-aware selection runs in its own method so the
            # static path below keeps its historical float arithmetic
            # untouched (alpha == 0 stays bit-identical to older runs).
            return self._select_candidates_weighted(
                aux, source, stage, k, alpha, average
            )
        epsilon = self.config.epsilon
        if average is None:
            average = aux.average_weight()
        partition_weights = aux.partition_weights
        source_weight = partition_weights[source]
        overloaded = (
            1.0 if average == 0 else source_weight / average
        ) > epsilon
        weights, counters = aux.selection_view(source)
        two_minus_eps = 2.0 - epsilon
        # Admissible-target ID bounds for the stage, hoisted out of the
        # inner loops.  The overload path scans the dense range ascending
        # (as in the reference); the non-overloaded path instead walks the
        # vertex's sparse counters, since only partitions it has neighbors
        # in can clear the strictly-positive-gain bar — and therefore only
        # needs to scan the stage's *directional* boundary set: a vertex
        # with no neighbor in an allowed-direction partition cannot
        # produce a candidate this stage.
        if stage == STAGE_LOW_TO_HIGH:
            cp_lo, cp_hi = source + 1, aux.num_partitions - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_toward_higher(source)
            )
        elif stage == STAGE_HIGH_TO_LOW:
            cp_lo, cp_hi = 0, source - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_toward_lower(source)
            )
        else:  # STAGE_ANY_DIRECTION (ablation only)
            cp_lo, cp_hi = 0, aux.num_partitions - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_vertices(source)
            )
        dense_targets = range(cp_lo, cp_hi + 1)

        # Min-heap of (gain, tiebreak, vertex, target); the unique tiebreak
        # means the trailing fields never get compared, and the winning
        # MigrationCandidate objects are only materialized for the <= k
        # survivors rather than every admissible vertex.
        top_k: List[Tuple[int, int, int, int]] = []
        heappush, heapreplace = heapq.heappush, heapq.heapreplace
        tiebreak = 0
        # Sorted scan: deterministic tie-breaking regardless of how the
        # auxiliary store (centralized or sharded) orders its vertex sets.
        for vertex in sorted(scan):
            weight = weights[vertex]
            # Algorithm 1 line 2: moving v must not underload the source.
            if (
                average != 0
                and (source_weight + -weight) / average < two_minus_eps
            ):
                continue
            counts = counters[vertex]
            d_source = counts.get(source, 0)
            target = None
            if overloaded:
                best_gain = float("-inf")
                for candidate_partition in dense_targets:
                    if candidate_partition == source:
                        continue
                    candidate_gain = (
                        counts.get(candidate_partition, 0) - d_source
                    )
                    if candidate_gain <= best_gain:
                        continue
                    if (
                        average == 0
                        or (partition_weights[candidate_partition] + weight)
                        / average
                        < epsilon
                    ):
                        target = candidate_partition
                        best_gain = candidate_gain
            else:
                best_gain = 0
                for candidate_partition, count in counts.items():
                    if (
                        candidate_partition < cp_lo
                        or candidate_partition > cp_hi
                        or candidate_partition == source
                    ):
                        continue
                    candidate_gain = count - d_source
                    if candidate_gain < best_gain or (
                        candidate_gain == best_gain
                        and (target is None or candidate_partition > target)
                    ):
                        continue
                    if (
                        average == 0
                        or (partition_weights[candidate_partition] + weight)
                        / average
                        < epsilon
                    ):
                        target = candidate_partition
                        best_gain = candidate_gain
            if target is None:
                continue
            entry = (best_gain, tiebreak, vertex, target)
            tiebreak += 1
            if len(top_k) < k:
                heappush(top_k, entry)
            elif best_gain > top_k[0][0]:
                heapreplace(top_k, entry)
        return [
            MigrationCandidate(entry[2], source, entry[3], entry[0])
            for entry in top_k
        ]

    def _select_candidates_capacity(
        self,
        aux: AuxiliaryData,
        source: int,
        stage: int,
        k: int,
        targets: List[float],
    ) -> List[MigrationCandidate]:
        """Capacity-aware variant of :meth:`_select_candidates`.

        Same structure — frozen per-stage targets, directional boundary
        scan, top-k min-heap — but every balance test compares a
        partition's weight against its *capacity-weighted* target
        (:func:`~repro.core.auxiliary.capacity_targets`) instead of the
        plain average.  A zero-capacity partition (a draining server) has
        target 0: it reads as infinitely overloaded while non-empty, so
        it sheds interior vertices at negative gain, and it is never an
        admissible move target.
        """
        epsilon = self.config.epsilon
        partition_weights = aux.partition_weights
        source_weight = partition_weights[source]
        overloaded = weighted_imbalance(source_weight, targets[source]) > epsilon
        draining = targets[source] == 0.0
        weights, counters = aux.selection_view(source)
        two_minus_eps = 2.0 - epsilon
        if stage == STAGE_LOW_TO_HIGH:
            cp_lo, cp_hi = source + 1, aux.num_partitions - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_toward_higher(source)
            )
        elif stage == STAGE_HIGH_TO_LOW:
            cp_lo, cp_hi = 0, source - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_toward_lower(source)
            )
        else:  # STAGE_ANY_DIRECTION (ablation only)
            cp_lo, cp_hi = 0, aux.num_partitions - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_vertices(source)
            )
        dense_targets = range(cp_lo, cp_hi + 1)

        top_k: List[Tuple[int, int, int, int]] = []
        heappush, heapreplace = heapq.heappush, heapq.heapreplace
        tiebreak = 0
        for vertex in sorted(scan):
            weight = weights[vertex]
            # Algorithm 1 line 2: moving v must not underload the source —
            # unless the source is draining, which must shed everything.
            if (
                not draining
                and weighted_imbalance(source_weight - weight, targets[source])
                < two_minus_eps
            ):
                continue
            counts = counters[vertex]
            d_source = counts.get(source, 0)
            target = None
            if overloaded:
                best_gain = float("-inf")
                for candidate_partition in dense_targets:
                    if candidate_partition == source:
                        continue
                    candidate_gain = (
                        counts.get(candidate_partition, 0) - d_source
                    )
                    if candidate_gain <= best_gain:
                        continue
                    if (
                        targets[candidate_partition] > 0.0
                        and weighted_imbalance(
                            partition_weights[candidate_partition] + weight,
                            targets[candidate_partition],
                        )
                        < epsilon
                    ):
                        target = candidate_partition
                        best_gain = candidate_gain
            else:
                best_gain = 0
                for candidate_partition, count in counts.items():
                    if (
                        candidate_partition < cp_lo
                        or candidate_partition > cp_hi
                        or candidate_partition == source
                    ):
                        continue
                    candidate_gain = count - d_source
                    if candidate_gain < best_gain or (
                        candidate_gain == best_gain
                        and (target is None or candidate_partition > target)
                    ):
                        continue
                    if (
                        targets[candidate_partition] > 0.0
                        and weighted_imbalance(
                            partition_weights[candidate_partition] + weight,
                            targets[candidate_partition],
                        )
                        < epsilon
                    ):
                        target = candidate_partition
                        best_gain = candidate_gain
            if target is None:
                continue
            entry = (best_gain, tiebreak, vertex, target)
            tiebreak += 1
            if len(top_k) < k:
                heappush(top_k, entry)
            elif best_gain > top_k[0][0]:
                heapreplace(top_k, entry)
        return [
            MigrationCandidate(entry[2], source, entry[3], entry[0])
            for entry in top_k
        ]

    def _select_candidates_weighted(
        self,
        aux: AuxiliaryData,
        source: int,
        stage: int,
        k: int,
        alpha: float,
        average: Optional[float] = None,
    ) -> List[MigrationCandidate]:
        """Workload-aware variant of :meth:`_select_candidates`.

        Same structure — frozen average, directional boundary scan,
        top-k min-heap — but each candidate is ranked by the blended
        gain ``(1 - alpha) * (d_t - d_s) + alpha * (h_t - h_s)``, where
        ``h`` comes from the attached observed-traffic heat.  Heat only
        exists on traversed (real) edges, so every partition a vertex
        has heat toward also appears in its integer counters: the sparse
        counter-key scan and the directional boundary sets remain
        complete for the strictly-positive-gain bar, exactly as in the
        static path.
        """
        epsilon = self.config.epsilon
        if average is None:
            average = aux.average_weight()
        partition_weights = aux.partition_weights
        source_weight = partition_weights[source]
        overloaded = (
            1.0 if average == 0 else source_weight / average
        ) > epsilon
        weights, counters = aux.selection_view(source)
        heat_view = aux.heat_selection_view(source)
        no_heat: Dict[int, float] = {}
        two_minus_eps = 2.0 - epsilon
        one_minus_alpha = 1.0 - alpha
        if stage == STAGE_LOW_TO_HIGH:
            cp_lo, cp_hi = source + 1, aux.num_partitions - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_toward_higher(source)
            )
        elif stage == STAGE_HIGH_TO_LOW:
            cp_lo, cp_hi = 0, source - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_toward_lower(source)
            )
        else:  # STAGE_ANY_DIRECTION (ablation only)
            cp_lo, cp_hi = 0, aux.num_partitions - 1
            scan = (
                aux.vertices_in(source)
                if overloaded
                else aux.boundary_vertices(source)
            )
        dense_targets = range(cp_lo, cp_hi + 1)

        top_k: List[Tuple[float, int, int, int]] = []
        heappush, heapreplace = heapq.heappush, heapq.heapreplace
        tiebreak = 0
        for vertex in sorted(scan):
            weight = weights[vertex]
            if (
                average != 0
                and (source_weight + -weight) / average < two_minus_eps
            ):
                continue
            counts = counters[vertex]
            d_source = counts.get(source, 0)
            heat = heat_view.get(vertex, no_heat)
            h_source = heat.get(source, 0.0)
            target = None
            if overloaded:
                best_gain = float("-inf")
                for candidate_partition in dense_targets:
                    if candidate_partition == source:
                        continue
                    candidate_gain = one_minus_alpha * (
                        counts.get(candidate_partition, 0) - d_source
                    ) + alpha * (heat.get(candidate_partition, 0.0) - h_source)
                    if candidate_gain <= best_gain:
                        continue
                    if (
                        average == 0
                        or (partition_weights[candidate_partition] + weight)
                        / average
                        < epsilon
                    ):
                        target = candidate_partition
                        best_gain = candidate_gain
            else:
                best_gain = 0.0
                for candidate_partition, count in counts.items():
                    if (
                        candidate_partition < cp_lo
                        or candidate_partition > cp_hi
                        or candidate_partition == source
                    ):
                        continue
                    candidate_gain = one_minus_alpha * (
                        count - d_source
                    ) + alpha * (heat.get(candidate_partition, 0.0) - h_source)
                    if candidate_gain < best_gain or (
                        candidate_gain == best_gain
                        and (target is None or candidate_partition > target)
                    ):
                        continue
                    if (
                        average == 0
                        or (partition_weights[candidate_partition] + weight)
                        / average
                        < epsilon
                    ):
                        target = candidate_partition
                        best_gain = candidate_gain
            if target is None:
                continue
            entry = (best_gain, tiebreak, vertex, target)
            tiebreak += 1
            if len(top_k) < k:
                heappush(top_k, entry)
            elif best_gain > top_k[0][0]:
                heapreplace(top_k, entry)
        return [
            MigrationCandidate(entry[2], source, entry[3], entry[0])
            for entry in top_k
        ]

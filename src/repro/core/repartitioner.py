"""Algorithm 2: the lightweight repartitioner's iterative first phase.

Each *iteration* runs two *stages*.  In stage 1 vertices may migrate only
from lower-ID partitions to higher-ID partitions; stage 2 allows only the
opposite direction.  Within a stage every partition independently (in the
real system: in parallel; here: against a common auxiliary-data snapshot)
selects its migration candidates via Algorithm 1, keeps the top-k by gain,
and logically migrates them — only auxiliary records move.  The phase ends
when an entire iteration selects no candidate; the resulting set of moves
is then handed to the physical-migration phase (:mod:`repro.core.migration`
and :mod:`repro.cluster.migration_executor`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.auxiliary import AuxiliaryData
from repro.core.candidates import (
    STAGE_ANY_DIRECTION,
    STAGE_HIGH_TO_LOW,
    STAGE_LOW_TO_HIGH,
    MigrationCandidate,
    get_target_partition,
)
from repro.core.config import RepartitionerConfig
from repro.exceptions import PartitioningError
from repro.graph.adjacency import SocialGraph
from repro.partitioning.base import Partitioning


@dataclass(frozen=True)
class IterationStats:
    """Instrumentation for one iteration of the first phase."""

    iteration: int
    migrations: int
    edge_cut: int
    max_imbalance: float


@dataclass
class RepartitionResult:
    """Outcome of a full phase-1 run.

    ``moves`` maps each vertex that ended up on a new partition to its
    ``(original, final)`` partition pair — the input to physical migration.
    ``history`` records per-iteration stats (Table 2 / Figure 11 inputs).
    """

    converged: bool
    iterations: int
    initial_edge_cut: int
    final_edge_cut: int
    initial_imbalance: float
    final_imbalance: float
    moves: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    history: List[IterationStats] = field(default_factory=list)
    #: True when the run stopped on the plateau rule (edge-cut stable and
    #: balance valid) rather than on an empty candidate set
    stalled: bool = False

    @property
    def total_logical_migrations(self) -> int:
        """Logical moves performed, counting repeats of the same vertex."""
        return sum(stats.migrations for stats in self.history)

    @property
    def vertices_moved(self) -> int:
        """Vertices whose final partition differs from their original one."""
        return len(self.moves)


class LightweightRepartitioner:
    """The paper's dynamic repartitioner (Sections 3.1-3.3).

    The instance is stateless between runs; all mutable state lives in the
    :class:`AuxiliaryData` passed to :meth:`run`.

    Example
    -------
    >>> from repro.graph import orkut_like
    >>> from repro.partitioning import HashPartitioner
    >>> dataset = orkut_like(n=300, seed=1)
    >>> partitioning = HashPartitioner().partition(dataset.graph, 4)
    >>> result = LightweightRepartitioner().run(dataset.graph, partitioning)
    >>> result.final_edge_cut <= result.initial_edge_cut
    True
    """

    def __init__(self, config: Optional[RepartitionerConfig] = None):
        self.config = config or RepartitionerConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        graph: SocialGraph,
        partitioning: Partitioning,
        aux: Optional[AuxiliaryData] = None,
        on_iteration: Optional[Callable[[IterationStats], None]] = None,
    ) -> RepartitionResult:
        """Run phase 1 to convergence, mutating ``partitioning`` in place.

        Parameters
        ----------
        graph:
            Used only for two things the hosting servers know locally:
            adjacency lists of migrating vertices (to forward counter
            updates) and initial bootstrap when ``aux`` is None.  The
            candidate selection itself reads nothing but ``aux``.
        aux:
            Pre-maintained auxiliary data; built from the graph when absent.
        on_iteration:
            Optional progress callback.
        """
        if aux is None:
            aux = AuxiliaryData.from_graph(graph, partitioning)
        elif aux.num_partitions != partitioning.num_partitions:
            raise PartitioningError(
                "auxiliary data and partitioning disagree on partition count"
            )

        original = {v: partitioning.partition_of(v) for v in graph.vertices()}
        result = RepartitionResult(
            converged=False,
            iterations=0,
            initial_edge_cut=aux.edge_cut(),
            final_edge_cut=0,
            initial_imbalance=aux.max_imbalance(),
            final_imbalance=0.0,
        )

        stages = (
            (STAGE_LOW_TO_HIGH, STAGE_HIGH_TO_LOW)
            if self.config.two_stage
            else (STAGE_ANY_DIRECTION,)
        )
        k = self.config.effective_k(graph.num_vertices)

        best_cut = result.initial_edge_cut
        best_cut_iteration = 0
        for iteration in range(1, self.config.max_iterations + 1):
            migrations = 0
            for stage in stages:
                migrations += self._run_stage(graph, partitioning, aux, stage, k)
            stats = IterationStats(
                iteration=iteration,
                migrations=migrations,
                edge_cut=aux.edge_cut(),
                max_imbalance=aux.max_imbalance(),
            )
            result.history.append(stats)
            result.iterations = iteration
            if on_iteration is not None:
                on_iteration(stats)
            if migrations == 0:
                result.converged = True
                break
            if stats.edge_cut < best_cut:
                best_cut = stats.edge_cut
                best_cut_iteration = iteration
            if self._stalled(stats, iteration, best_cut_iteration):
                result.stalled = True
                break

        result.final_edge_cut = aux.edge_cut()
        result.final_imbalance = aux.max_imbalance()
        result.moves = {
            vertex: (source, partitioning.partition_of(vertex))
            for vertex, source in original.items()
            if partitioning.partition_of(vertex) != source
        }
        return result

    def _stalled(
        self, stats: IterationStats, iteration: int, best_cut_iteration: int
    ) -> bool:
        """Plateau rule: balance is valid and the cut stopped improving.

        Guards against the balance-shed/cut-restore limit cycles that the
        snapshot-parallel per-stage selection can enter near the epsilon
        boundary (the paper bounds these only through small k).
        """
        if self.config.stall_iterations is None:
            return False
        if stats.max_imbalance > self.config.epsilon:
            return False
        return iteration - best_cut_iteration >= self.config.stall_iterations

    # ------------------------------------------------------------------
    def _run_stage(
        self,
        graph: SocialGraph,
        partitioning: Partitioning,
        aux: AuxiliaryData,
        stage: int,
        k: int,
    ) -> int:
        """One stage: parallel per-partition selection, then apply moves.

        Every partition evaluates its candidates against the same snapshot
        of the auxiliary data (matching the paper's parallel execution:
        "the algorithm does not know the target partition of other
        vertices"), selects its top-k by gain, and all chosen vertices then
        migrate logically.
        """
        chosen: List[MigrationCandidate] = []
        for source in range(aux.num_partitions):
            chosen.extend(self._select_candidates(aux, source, stage, k))
        for candidate in chosen:
            # Current partition may have changed only if the same vertex was
            # selected twice, which per-partition selection rules out.
            aux.apply_move(
                candidate.vertex, candidate.target, graph.neighbors(candidate.vertex)
            )
            partitioning.move(candidate.vertex, candidate.target)
        return len(chosen)

    def _select_candidates(
        self, aux: AuxiliaryData, source: int, stage: int, k: int
    ) -> List[MigrationCandidate]:
        """Algorithm 2 lines 4-9 for one source partition.

        Returns at most ``k`` candidates, the ones with maximum gain.
        """
        epsilon = self.config.epsilon
        top_k: List[Tuple[int, int, MigrationCandidate]] = []  # min-heap
        tiebreak = 0
        # Sorted scan: deterministic tie-breaking regardless of how the
        # auxiliary store (centralized or sharded) orders its vertex sets.
        for vertex in sorted(aux.vertices_in(source)):
            target, vertex_gain = get_target_partition(aux, vertex, stage, epsilon)
            if target is None:
                continue
            candidate = MigrationCandidate(vertex, source, target, vertex_gain)
            entry = (vertex_gain, tiebreak, candidate)
            tiebreak += 1
            if len(top_k) < k:
                heapq.heappush(top_k, entry)
            elif entry[0] > top_k[0][0]:
                heapq.heapreplace(top_k, entry)
        return [entry[2] for entry in top_k]

"""The paper's primary contribution: the lightweight repartitioner.

The repartitioner (Section 3) incrementally improves an existing
partitioning — decreasing edge-cut while keeping partitions balanced —
using only *auxiliary data*: for each hosted vertex, the number of its
neighbors in each of the alpha partitions, plus the aggregate weight of
every partition.  It never consults adjacency lists or any other global
view of the graph structure.
"""

from repro.core.auxiliary import AuxiliaryData
from repro.core.candidates import MigrationCandidate, get_target_partition
from repro.core.config import RepartitionerConfig
from repro.core.gain import gain
from repro.core.migration import MigrationPlan, build_migration_plan
from repro.core.repartitioner import (
    IterationStats,
    LightweightRepartitioner,
    ParallelSelectionStrategy,
    RepartitionResult,
    SerialSelectionStrategy,
)
from repro.core.sharded import AuxiliaryShard, ShardedAuxiliaryData
from repro.core.triggers import ImbalanceTrigger

__all__ = [
    "AuxiliaryData",
    "ShardedAuxiliaryData",
    "AuxiliaryShard",
    "RepartitionerConfig",
    "LightweightRepartitioner",
    "RepartitionResult",
    "IterationStats",
    "SerialSelectionStrategy",
    "ParallelSelectionStrategy",
    "MigrationCandidate",
    "get_target_partition",
    "gain",
    "MigrationPlan",
    "build_migration_plan",
    "ImbalanceTrigger",
]

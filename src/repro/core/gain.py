"""The gain function of the lightweight repartitioner (Section 3.1).

``gain(v) = d_v(t) - d_v(s)``: the difference between the number of
neighbors of ``v`` in the target and source partitions.  It equals the
decrease in edge-cut if ``v`` migrates alone, and may be negative.
"""

from __future__ import annotations

from repro.core.auxiliary import AuxiliaryData


def gain(aux: AuxiliaryData, vertex: int, source: int, target: int) -> int:
    """Edge-cut decrease from moving ``vertex`` from ``source`` to ``target``."""
    counts = aux.neighbor_counts(vertex)
    return counts.get(target, 0) - counts.get(source, 0)


def weighted_gain(
    aux: AuxiliaryData, vertex: int, source: int, target: int, alpha: float
) -> float:
    """Gain blended with observed-traffic heat.

    ``(1 - alpha) * (d_t - d_s) + alpha * (h_t - h_s)`` where ``h`` is
    per-partition heat from :meth:`AuxiliaryData.heat_counts` — the
    reduction in (heat-weighted) traversal communication if ``vertex``
    migrates alone.  With ``alpha == 0`` this returns the exact integer
    :func:`gain`, preserving static-path determinism.
    """
    static = gain(aux, vertex, source, target)
    if alpha == 0.0:
        return static
    heat = aux.heat_counts(vertex)
    hot = heat.get(target, 0.0) - heat.get(source, 0.0)
    return (1.0 - alpha) * static + alpha * hot

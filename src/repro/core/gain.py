"""The gain function of the lightweight repartitioner (Section 3.1).

``gain(v) = d_v(t) - d_v(s)``: the difference between the number of
neighbors of ``v`` in the target and source partitions.  It equals the
decrease in edge-cut if ``v`` migrates alone, and may be negative.
"""

from __future__ import annotations

from repro.core.auxiliary import AuxiliaryData


def gain(aux: AuxiliaryData, vertex: int, source: int, target: int) -> int:
    """Edge-cut decrease from moving ``vertex`` from ``source`` to ``target``."""
    counts = aux.neighbor_counts(vertex)
    return counts.get(target, 0) - counts.get(source, 0)

"""Reproduction of *Hermes: Dynamic Partitioning for Distributed Social
Network Graph Databases* (Nicoara, Kamali, Daudjee, Chen — EDBT 2015).

Public API highlights
---------------------
* :class:`repro.core.LightweightRepartitioner` — the paper's contribution:
  an incremental, auxiliary-data-only repartitioner.
* :class:`repro.partitioning.MultilevelPartitioner` /
  :class:`repro.partitioning.HashPartitioner` — the static baselines.
* :class:`repro.cluster.HermesCluster` — a simulated distributed graph
  database (Neo4j-style storage engine per server, remote traversals,
  on-the-fly physical migration).
* :mod:`repro.graph` — social-graph substrate, generators, statistics.
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation.
"""

from repro.core import (
    AuxiliaryData,
    ImbalanceTrigger,
    LightweightRepartitioner,
    MigrationPlan,
    RepartitionerConfig,
    RepartitionResult,
    build_migration_plan,
)
from repro.graph import Dataset, SocialGraph, make_dataset
from repro.partitioning import (
    HashPartitioner,
    MultilevelPartitioner,
    Partitioning,
    edge_cut,
    edge_cut_fraction,
    imbalance_factor,
    migration_stats,
)

__version__ = "1.0.0"

__all__ = [
    "SocialGraph",
    "Dataset",
    "make_dataset",
    "Partitioning",
    "HashPartitioner",
    "MultilevelPartitioner",
    "edge_cut",
    "edge_cut_fraction",
    "imbalance_factor",
    "migration_stats",
    "AuxiliaryData",
    "RepartitionerConfig",
    "LightweightRepartitioner",
    "RepartitionResult",
    "MigrationPlan",
    "build_migration_plan",
    "ImbalanceTrigger",
    "__version__",
]

"""Timeout-based deadlock detection (paper Section 4).

"As the centralized loop detection algorithm used by Neo4j for deadlock
detection does not scale well, it was replaced using a timeout-based
detection scheme" [Bernstein & Newcomer].  Any transaction that has waited
longer than the timeout is *presumed* deadlocked and chosen as a victim.
False positives are possible (a slow but live holder) — that is the
accepted trade-off of timeout schemes.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import TransactionError
from repro.txn.locks import LockManager


class TimeoutDeadlockDetector:
    """Selects timed-out waiters as deadlock victims."""

    def __init__(self, timeout: float = 1.0):
        if timeout <= 0:
            raise TransactionError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout

    def victims(self, locks: LockManager, now: float) -> List[int]:
        """Transaction IDs that have waited for longer than the timeout."""
        expired = {
            txn_id
            for txn_id, _, since in locks.waiting_since()
            if now - since > self.timeout
        }
        return sorted(expired)

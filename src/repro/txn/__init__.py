"""Transactions: lock manager with timeout-based deadlock detection.

Hermes replaced Neo4j's centralized loop-detection deadlock detector with
"a timeout-based detection scheme" because centralized detection does not
scale across servers (paper Section 4).  This package provides the lock
table, the timeout policy, and a transaction manager whose aborts roll
back buffered writes.
"""

from repro.txn.deadlock import TimeoutDeadlockDetector
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import Transaction, TransactionManager, TransactionStatus

__all__ = [
    "LockMode",
    "LockManager",
    "TimeoutDeadlockDetector",
    "Transaction",
    "TransactionManager",
    "TransactionStatus",
]

"""Shared/exclusive lock table with FIFO waiters.

Locks protect record-level resources inside one server (e.g. a node and
its relationship chain during a write, or a vertex being migrated).  The
manager is deliberately synchronous: the cluster simulator is a
discrete-event system, so "blocking" is modeled by queueing a waiter and
letting the deadlock detector abort it if it waits past the timeout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.exceptions import TransactionError


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _LockEntry:
    """State of one resource's lock."""

    mode: Optional[LockMode] = None
    holders: Set[int] = field(default_factory=set)
    # FIFO wait queue of (txn_id, requested mode, enqueue time)
    waiters: List[Tuple[int, LockMode, float]] = field(default_factory=list)


class LockManager:
    """A lock table keyed by arbitrary hashable resources."""

    def __init__(self) -> None:
        self._table: Dict[Hashable, _LockEntry] = {}
        self._held_by_txn: Dict[int, Set[Hashable]] = {}

    # ------------------------------------------------------------------
    def acquire(
        self, txn_id: int, resource: Hashable, mode: LockMode, now: float = 0.0
    ) -> bool:
        """Try to take the lock; returns True if granted, False if queued.

        Re-acquiring a held lock is a no-op; upgrading SHARED -> EXCLUSIVE
        succeeds immediately when the transaction is the sole holder.
        """
        entry = self._table.setdefault(resource, _LockEntry())
        if txn_id in entry.holders:
            if mode is LockMode.EXCLUSIVE and entry.mode is LockMode.SHARED:
                if len(entry.holders) == 1:
                    entry.mode = LockMode.EXCLUSIVE
                    return True
                self._enqueue(entry, txn_id, mode, now)
                return False
            return True
        if self._compatible(entry, mode):
            entry.holders.add(txn_id)
            entry.mode = self._merge_mode(entry.mode, mode)
            self._held_by_txn.setdefault(txn_id, set()).add(resource)
            return True
        self._enqueue(entry, txn_id, mode, now)
        return False

    @staticmethod
    def _compatible(entry: _LockEntry, mode: LockMode) -> bool:
        if not entry.holders:
            # Empty lock, but FIFO fairness: don't jump a non-empty queue.
            return not entry.waiters
        if entry.waiters:
            return False
        return entry.mode is LockMode.SHARED and mode is LockMode.SHARED

    @staticmethod
    def _merge_mode(current: Optional[LockMode], mode: LockMode) -> LockMode:
        if current is LockMode.EXCLUSIVE or mode is LockMode.EXCLUSIVE:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    def _enqueue(
        self, entry: _LockEntry, txn_id: int, mode: LockMode, now: float
    ) -> None:
        if any(waiter_id == txn_id for waiter_id, _, _ in entry.waiters):
            return
        entry.waiters.append((txn_id, mode, now))

    # ------------------------------------------------------------------
    def release_all(self, txn_id: int) -> List[Tuple[int, Hashable]]:
        """Release everything the transaction holds or waits for.

        Returns the list of ``(txn_id, resource)`` grants promoted from
        wait queues as a result.
        """
        promoted: List[Tuple[int, Hashable]] = []
        for resource in self._held_by_txn.pop(txn_id, set()):
            entry = self._table.get(resource)
            if entry is None:
                continue
            entry.holders.discard(txn_id)
            if not entry.holders:
                entry.mode = None
            promoted.extend(self._promote(resource, entry))
        # Drop any still-queued waits (an aborting txn leaves its queues).
        for resource, entry in list(self._table.items()):
            entry.waiters = [w for w in entry.waiters if w[0] != txn_id]
            promoted.extend(self._promote(resource, entry))
            if not entry.holders and not entry.waiters:
                del self._table[resource]
        return promoted

    def _promote(
        self, resource: Hashable, entry: _LockEntry
    ) -> List[Tuple[int, Hashable]]:
        """Grant from the head of the FIFO queue while compatible."""
        promoted: List[Tuple[int, Hashable]] = []
        while entry.waiters:
            txn_id, mode, _ = entry.waiters[0]
            if entry.holders == {txn_id} and mode is LockMode.EXCLUSIVE:
                # Pending upgrade: sole holder waiting for exclusivity.
                entry.mode = LockMode.EXCLUSIVE
                entry.waiters.pop(0)
                promoted.append((txn_id, resource))
                continue
            if entry.holders:
                if entry.mode is LockMode.SHARED and mode is LockMode.SHARED:
                    entry.waiters.pop(0)
                    entry.holders.add(txn_id)
                    self._held_by_txn.setdefault(txn_id, set()).add(resource)
                    promoted.append((txn_id, resource))
                    continue
                break
            entry.waiters.pop(0)
            entry.holders.add(txn_id)
            entry.mode = mode
            self._held_by_txn.setdefault(txn_id, set()).add(resource)
            promoted.append((txn_id, resource))
            if mode is LockMode.EXCLUSIVE:
                break
        return promoted

    # ------------------------------------------------------------------
    def holds(self, txn_id: int, resource: Hashable) -> bool:
        entry = self._table.get(resource)
        return entry is not None and txn_id in entry.holders

    def is_waiting(self, txn_id: int, resource: Hashable) -> bool:
        entry = self._table.get(resource)
        if entry is None:
            return False
        return any(waiter_id == txn_id for waiter_id, _, _ in entry.waiters)

    def waiting_since(self) -> List[Tuple[int, Hashable, float]]:
        """All queued waits as ``(txn_id, resource, enqueue_time)``."""
        waits = []
        for resource, entry in self._table.items():
            for txn_id, _, since in entry.waiters:
                waits.append((txn_id, resource, since))
        return waits

    def held_resources(self, txn_id: int) -> Set[Hashable]:
        return set(self._held_by_txn.get(txn_id, set()))

    def assert_consistent(self) -> None:
        """Internal consistency check used by property-based tests."""
        for resource, entry in self._table.items():
            if entry.holders and entry.mode is None:
                raise TransactionError(f"{resource}: holders without a mode")
            if entry.mode is LockMode.EXCLUSIVE and len(entry.holders) > 1:
                raise TransactionError(f"{resource}: multiple exclusive holders")
            for holder in entry.holders:
                if resource not in self._held_by_txn.get(holder, set()):
                    raise TransactionError(
                        f"{resource}: holder {holder} missing reverse index"
                    )

"""Transactions with undo-based rollback over the lock manager.

The storage engine itself is a single-writer structure per server; the
transaction layer provides atomicity (buffered undo actions) and isolation
(record locks) for the operations the evaluation exercises: property
writes, edge inserts, and the migration protocol's unavailable state.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, Hashable, List, Optional

from repro.exceptions import (
    LockTimeoutError,
    TransactionAbortedError,
    TransactionError,
)
from repro.txn.deadlock import TimeoutDeadlockDetector
from repro.txn.locks import LockManager, LockMode


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work; undo actions run in reverse order on abort."""

    def __init__(self, txn_id: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self.status = TransactionStatus.ACTIVE
        self._manager = manager
        self._undo_log: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    def _require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionAbortedError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    def lock(self, resource: Hashable, mode: LockMode = LockMode.EXCLUSIVE) -> None:
        """Acquire a lock or raise :class:`LockTimeoutError` (presumed
        deadlock) — the simulator treats a queued wait that cannot be
        granted immediately as a wait that will be resolved by timeout."""
        self._require_active()
        self._manager.acquire(self, resource, mode)

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Register the inverse of an applied operation."""
        self._require_active()
        self._undo_log.append(undo)

    def do(self, apply: Callable[[], None], undo: Callable[[], None]) -> None:
        """Apply an operation and remember its inverse."""
        self._require_active()
        apply()
        self._undo_log.append(undo)

    def commit(self) -> None:
        self._require_active()
        self.status = TransactionStatus.COMMITTED
        self._undo_log.clear()
        self._manager.finish(self)

    def abort(self) -> None:
        if self.status is TransactionStatus.ABORTED:
            return
        self._require_active()
        for undo in reversed(self._undo_log):
            undo()
        self._undo_log.clear()
        self.status = TransactionStatus.ABORTED
        self._manager.finish(self)

    # Context-manager sugar: commit on success, abort on exception.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.status is TransactionStatus.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Creates transactions and mediates lock acquisition + timeouts."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        lock_timeout: float = 1.0,
    ):
        self.locks = LockManager()
        self.detector = TimeoutDeadlockDetector(timeout=lock_timeout)
        self._clock = clock or (lambda: 0.0)
        self._next_id = itertools.count(1)
        self._active: Dict[int, Transaction] = {}
        #: observability counters (surface in experiment reports)
        self.stats = {"begun": 0, "committed": 0, "aborted": 0, "lock_timeouts": 0}

    def begin(self) -> Transaction:
        txn = Transaction(next(self._next_id), self)
        self._active[txn.txn_id] = txn
        self.stats["begun"] += 1
        return txn

    def acquire(self, txn: Transaction, resource: Hashable, mode: LockMode) -> None:
        """Grant immediately or treat the conflict as a presumed deadlock.

        The simulator is single-threaded, so a conflicting request can
        never be granted by concurrent progress within the same event; the
        timeout policy therefore degenerates to abort-on-conflict for
        intra-event conflicts, which is exactly how a timeout scheme
        resolves a true deadlock.
        """
        granted = self.locks.acquire(txn.txn_id, resource, mode, now=self._clock())
        if not granted:
            self.stats["lock_timeouts"] += 1
            txn.abort()
            raise LockTimeoutError(
                f"transaction {txn.txn_id} timed out waiting for {resource!r} "
                "(presumed deadlock)"
            )

    def finish(self, txn: Transaction) -> None:
        if txn.status is TransactionStatus.ACTIVE:
            raise TransactionError("finish() called on an active transaction")
        self._active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)
        if txn.status is TransactionStatus.COMMITTED:
            self.stats["committed"] += 1
        else:
            self.stats["aborted"] += 1

    def sweep_timeouts(self) -> List[int]:
        """Abort every waiter whose wait exceeded the timeout (the periodic
        background check a real timeout-based detector runs)."""
        victims = self.detector.victims(self.locks, self._clock())
        aborted = []
        for txn_id in victims:
            txn = self._active.get(txn_id)
            if txn is not None and txn.status is TransactionStatus.ACTIVE:
                self.stats["lock_timeouts"] += 1
                txn.abort()
                aborted.append(txn_id)
        return aborted

    @property
    def active_count(self) -> int:
        return len(self._active)
